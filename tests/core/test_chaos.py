"""Randomized failure-injection (chaos) tests.

Crash and recover nodes at random points under write load and verify
that the *alive* portion of the cluster preserves the protocol's
guarantees throughout.  (The paper — and this reproduction — leaves
mid-transaction coordinator crash recovery to future work, so the chaos
here targets follower crashes and post-crash convergence.)
"""

import random

import pytest

from repro import LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster
from repro.core.recovery import RecoveryManager
from repro.hw.params import MachineParams, us

ARCHES = [MINOS_B, MINOS_O]


def build(config, nodes=4):
    cluster = MinosCluster(model=LIN_SYNCH, config=config,
                           params=MachineParams(nodes=nodes))
    manager = RecoveryManager(cluster, heartbeat_interval=us(20),
                              timeout=us(100))
    for node in cluster.nodes:
        node.engine.tolerate_stale_acks = True
    cluster.load_records([(f"k{i}", "v0") for i in range(6)])
    return cluster, manager


def alive_converged(cluster, victim):
    survivors = [n for n in cluster.nodes if n.node_id != victim]
    for i in range(6):
        versions = {n.kv.volatile_read(f"k{i}").ts for n in survivors}
        if len(versions) != 1:
            return False
    return True


class TestFollowerCrash:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_survivors_converge_despite_crash(self, config, seed):
        cluster, manager = build(config)
        sim = cluster.sim
        rng = random.Random(seed)
        victim = 3  # never coordinates in this test

        def writer(node_id):
            for i in range(10):
                key = f"k{rng.randrange(6)}"
                yield from cluster.nodes[node_id].engine.client_write(
                    key, f"n{node_id}i{i}")

        def chaos():
            yield sim.timeout(us(rng.uniform(5, 40)))
            manager.crash(victim)
            yield sim.timeout(us(rng.uniform(400, 800)))
            manager.recover(victim)

        drivers = [sim.spawn(writer(n)) for n in (0, 1, 2)]
        sim.spawn(chaos())
        sim.run(until=us(10_000))
        assert all(d.triggered for d in drivers), "writers stalled"
        assert alive_converged(cluster, victim)
        # After recovery + catch-up, the victim also converged.
        sim.run(until=sim.now + us(5_000))
        reference = cluster.nodes[0].kv.volatile_read("k0")
        assert cluster.nodes[victim].kv.volatile_read("k0").ts == \
            reference.ts

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_two_follower_crashes(self, config):
        cluster, manager = build(config, nodes=5)
        sim = cluster.sim

        def writer():
            for i in range(8):
                yield from cluster.nodes[0].engine.client_write(
                    f"k{i % 6}", f"i{i}")

        manager.crash(3)
        manager.crash(4)
        driver = sim.spawn(writer())
        sim.run(until=us(8_000))
        assert driver.triggered
        for i in range(6):
            versions = {cluster.nodes[n].kv.volatile_read(f"k{i}").ts
                        for n in (0, 1, 2)}
            assert len(versions) == 1

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_crash_recover_crash_again(self, config):
        cluster, manager = build(config, nodes=3)
        sim = cluster.sim
        manager.crash(2)
        sim.run(until=us(500))
        cluster.write(0, "k0", "round1")
        process = manager.recover(2)
        sim.run(until=sim.now + us(2_000))
        assert process.triggered
        assert cluster.nodes[2].kv.volatile_read("k0").value == "round1"
        manager.crash(2)
        sim.run(until=sim.now + us(500))
        cluster.write(1, "k0", "round2")
        assert cluster.nodes[0].kv.volatile_read("k0").value == "round2"
        assert cluster.nodes[2].kv.volatile_read("k0").value == "round1"
