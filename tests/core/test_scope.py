"""Tests for the <Lin, Scope> model and the [PERSIST]sc transaction."""

import pytest

from repro import LIN_SCOPE, LIN_SYNCH, MINOS_B, MINOS_O
from repro.cluster.cluster import MinosCluster
from repro.core.scope import ScopeTracker
from repro.errors import ProtocolError
from repro.hw.params import MachineParams
from repro.sim import Simulator


def cluster(config=MINOS_B, nodes=3):
    c = MinosCluster(model=LIN_SCOPE, config=config,
                     params=MachineParams(nodes=nodes))
    c.load_records([(f"k{i}", "v0") for i in range(4)])
    return c


class TestScopeTracker:
    def test_wait_scope_durable_waits_all_registered(self):
        sim = Simulator()
        tracker = ScopeTracker(sim)
        done1 = tracker.register_write(scope=1)
        done2 = tracker.register_write(scope=1)
        assert tracker.outstanding(1) == 2

        def persister():
            yield sim.timeout(1.0)
            done1.succeed()
            yield sim.timeout(2.0)
            done2.succeed()

        def waiter():
            yield from tracker.wait_scope_durable(1)
            return sim.now

        sim.spawn(persister())
        assert sim.run_process(waiter()) == 3.0

    def test_unknown_scope_is_trivially_durable(self):
        sim = Simulator()
        tracker = ScopeTracker(sim)

        def waiter():
            yield from tracker.wait_scope_durable(99)
            return sim.now

        assert sim.run_process(waiter()) == 0.0


class TestPersistTransaction:
    @pytest.mark.parametrize("config", [MINOS_B, MINOS_O],
                             ids=lambda c: c.name)
    def test_persist_sc_makes_scope_durable_everywhere(self, config):
        c = cluster(config=config)
        for i in range(4):
            c.write(0, f"k{i}", f"item{i}", scope=5)
        c.persist_scope(0, 5)
        for node in c.nodes:
            for i in range(4):
                assert node.kv.durable_value(f"k{i}") == f"item{i}"

    def test_persist_requires_scope_model(self):
        c = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                         params=MachineParams(nodes=2))
        with pytest.raises(ProtocolError):
            c.persist_scope(0, 1)

    @pytest.mark.parametrize("config", [MINOS_B, MINOS_O],
                             ids=lambda c: c.name)
    def test_scoped_write_latency_below_synch(self, config):
        """Scoped writes defer durability, so they return faster than
        <Lin, Synch> writes on the same architecture."""
        scope_c = cluster(config=config)
        synch_c = MinosCluster(model=LIN_SYNCH, config=config,
                               params=MachineParams(nodes=3))
        synch_c.load_records([("k0", "v0")])
        scoped = scope_c.write(0, "k0", "x", scope=1)
        synch = synch_c.write(0, "k0", "x")
        assert scoped.latency < synch.latency

    def test_counters(self):
        c = cluster()
        c.write(0, "k0", "x", scope=3)
        c.persist_scope(0, 3)
        assert c.metrics.counters.scope_persist_txns == 1
        assert c.metrics.persist_latency.count == 1
