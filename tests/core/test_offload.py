"""Behavioural tests of the MINOS-O engine against Figures 7-8."""

import pytest

from repro import (ALL_MODELS, COMBINED, COMBINED_BATCHING,
                   COMBINED_BROADCAST, LIN_STRICT, LIN_SYNCH, MINOS_O)
from repro.cluster.cluster import MinosCluster
from repro.core.timestamp import Timestamp
from repro.hw.params import MachineParams


def cluster(model=LIN_SYNCH, config=MINOS_O, nodes=3, machine=None):
    params = (machine or MachineParams()).with_nodes(nodes)
    c = MinosCluster(model=model, config=config, params=params)
    c.load_records([("k", "v0")])
    return c


class TestSingleWrite:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_write_replicates_everywhere(self, model):
        c = cluster(model=model)
        result = c.write(0, "k", "v1")
        assert not result.obsolete
        c.sim.run()  # drain vFIFO/dFIFO tails
        for node in c.nodes:
            assert node.kv.volatile_read("k").value == "v1"
            assert node.kv.durable_value("k") == "v1"

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_rdlock_free_after_quiescence(self, model):
        c = cluster(model=model)
        c.write(0, "k", "v1")
        c.sim.run()
        for node in c.nodes:
            assert node.kv.meta("k").rdlock_free

    def test_offload_write_is_faster_than_baseline(self):
        from repro import MINOS_B
        co = cluster(config=MINOS_O)
        cb = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                          params=MachineParams(nodes=3))
        cb.load_records([("k", "v0")])
        ro = co.write(0, "k", "v1")
        rb = cb.write(0, "k", "v1")
        assert ro.latency < rb.latency

    def test_host_only_sends_one_batched_inv(self):
        """With batching, the host deposits one dest-mapped INV and gets
        one batched ACK (Fig. 8 lines 10-14)."""
        c = cluster()
        c.write(0, "k", "v1")
        # invs_sent counts logical INVs (one per follower)...
        assert c.metrics.counters.invs_sent == 2
        # ...but the SNIC broadcast put a single message on the wire.
        assert c.nodes[0].snic.messages_sent <= 3  # INV bcast + VAL bcast


class TestAblationConfigs:
    @pytest.mark.parametrize("config", [COMBINED, COMBINED_BROADCAST,
                                        COMBINED_BATCHING],
                             ids=lambda c: c.name)
    def test_combined_variants_are_correct(self, config):
        c = cluster(config=config)
        c.write(0, "k", "v1")
        c.sim.run()
        for node in c.nodes:
            assert node.kv.volatile_read("k").value == "v1"
            assert node.kv.durable_value("k") == "v1"
            assert node.kv.meta("k").rdlock_free

    def test_non_batched_forwards_every_ack_to_host(self):
        c = cluster(config=COMBINED)
        c.write(0, "k", "v1")
        # Fig. 6: "Every time an ACK is received, it is passed to the
        # host" — plus the completion notification.
        assert c.metrics.counters.writes_completed == 1


class TestVfifoSemantics:
    def test_conflicting_writes_skip_obsolete_vfifo_entries(self):
        """§V-B.4: the drain skips obsolete updates instead of writing
        stale data to the LLC."""
        c = cluster(nodes=4)
        sim = c.sim
        procs = []
        for round_ in range(3):
            for n in range(4):
                procs.append(sim.spawn(
                    c.nodes[n].engine.client_write("k", f"r{round_}n{n}")))
        sim.run()
        assert all(p.triggered for p in procs)
        reference = c.nodes[0].kv.volatile_read("k")
        for node in c.nodes:
            versioned = node.kv.volatile_read("k")
            assert versioned.ts == reference.ts
            assert versioned.value == reference.value
            assert node.kv.durable_value("k") == reference.value

    def test_tiny_fifo_still_correct(self):
        machine = MachineParams().with_fifo_entries(1)
        c = cluster(machine=machine, nodes=3)
        sim = c.sim
        procs = [sim.spawn(c.nodes[n].engine.client_write("k", f"v{n}"))
                 for n in range(3)]
        sim.run()
        assert all(p.triggered for p in procs)
        reference = c.nodes[0].kv.volatile_read("k").ts
        for node in c.nodes:
            assert node.kv.volatile_read("k").ts == reference


class TestStrictOffload:
    def test_val_c_then_val_p(self):
        c = cluster(model=LIN_STRICT)
        result = c.write(0, "k", "v1")
        c.sim.run()
        for node in c.nodes:
            meta = node.kv.meta("k")
            assert meta.glb_volatile_ts == result.ts
            assert meta.glb_durable_ts == result.ts


class TestReads:
    def test_read_after_write_sees_value(self):
        c = cluster()
        c.write(0, "k", "fresh")
        result = c.read(2, "k")
        assert result.value == "fresh"

    def test_offload_read_faster_under_write_load(self):
        """Reads check the coherent RDLock; under write traffic they
        still complete quickly because RDLock hold times are short."""
        c = cluster()
        sim = c.sim
        for n in range(3):
            sim.spawn(c.nodes[n].engine.client_write("k", f"v{n}"))
        read = sim.spawn(c.nodes[1].engine.client_read("k"))
        sim.run()
        assert read.triggered


class TestCoordinatorObsoletePathOffload:
    def test_snatched_write_cut_short_at_host(self):
        """Two same-node concurrent writes: the older one is obsoleted
        after the younger applies, returns obsolete without INVs."""
        c = cluster(nodes=3)
        sim = c.sim
        engine = c.nodes[0].engine
        first = sim.spawn(engine.client_write("k", "older"))
        second = sim.spawn(engine.client_write("k", "newer"))
        sim.run()
        results = [first.value, second.value]
        # Exactly one of them carries the higher version and wins.
        winner = max(results, key=lambda r: r.ts)
        assert c.nodes[1].kv.volatile_read("k").ts == winner.ts
        for node in c.nodes:
            assert node.kv.volatile_read("k").value is not None
            assert node.kv.meta("k").rdlock_free
