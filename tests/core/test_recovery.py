"""Tests for failure detection and recovery (paper §III-E)."""

import pytest

from repro import LIN_SYNCH, MINOS_B, MINOS_O
from repro.cluster.cluster import MinosCluster
from repro.core.recovery import (Heartbeat, JoinRequest, RecoveryManager,
                                 Rejoined)
from repro.errors import RecoveryError
from repro.hw.params import MachineParams, us


def build(config=MINOS_B, nodes=3):
    cluster = MinosCluster(model=LIN_SYNCH, config=config,
                           params=MachineParams(nodes=nodes))
    manager = RecoveryManager(cluster, heartbeat_interval=us(50),
                              timeout=us(200))
    for node in cluster.nodes:
        node.engine.tolerate_stale_acks = True
    cluster.load_records([("k", "v0")])
    return cluster, manager


class TestDetection:
    @pytest.mark.parametrize("config", [MINOS_B, MINOS_O],
                             ids=lambda c: c.name)
    def test_crash_detected_by_all_survivors(self, config):
        cluster, manager = build(config=config)
        manager.crash(2)
        cluster.sim.run(until=us(1000))
        assert 2 in manager.suspected[0]
        assert 2 in manager.suspected[1]
        assert 2 not in cluster.nodes[0].engine.peers
        assert 2 not in cluster.nodes[1].engine.peers

    def test_healthy_cluster_never_suspects(self):
        cluster, manager = build()
        cluster.sim.run(until=us(2000))
        assert manager.detections == 0

    def test_timeout_must_exceed_interval(self):
        cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                               params=MachineParams(nodes=2))
        with pytest.raises(RecoveryError):
            RecoveryManager(cluster, heartbeat_interval=us(100),
                            timeout=us(50))


class TestWritesUnderFailure:
    @pytest.mark.parametrize("config", [MINOS_B, MINOS_O],
                             ids=lambda c: c.name)
    def test_writes_complete_with_failed_node_excluded(self, config):
        cluster, manager = build(config=config)
        manager.crash(2)
        cluster.sim.run(until=us(1000))
        result = cluster.write(0, "k", "v1")
        assert not result.obsolete
        assert cluster.nodes[1].kv.volatile_read("k").value == "v1"
        # The crashed node never saw the update.
        assert cluster.nodes[2].kv.volatile_read("k").value == "v0"

    def test_inflight_write_unblocked_by_detection(self):
        """A write stuck waiting for a dead follower's ACK completes once
        the failure detector excludes the node."""
        cluster, manager = build()
        sim = cluster.sim
        manager.crash(2)  # crash BEFORE detection: ACK will never come
        write = sim.spawn(cluster.nodes[0].engine.client_write("k", "v1"))
        sim.run(until=us(3000))
        assert write.triggered


class TestRejoin:
    @pytest.mark.parametrize("config", [MINOS_B, MINOS_O],
                             ids=lambda c: c.name)
    def test_catchup_restores_volatile_and_durable_state(self, config):
        cluster, manager = build(config=config)
        manager.crash(2)
        cluster.sim.run(until=us(1000))
        cluster.write(0, "k", "v1")
        cluster.write(1, "k", "v2")
        process = manager.recover(2)
        cluster.sim.run(until=cluster.sim.now + us(2000))
        assert process.triggered
        assert cluster.nodes[2].kv.volatile_read("k").value == "v2"
        assert cluster.nodes[2].kv.durable_value("k") == "v2"
        assert manager.rejoins == 1

    def test_rejoined_node_reincluded_in_replica_sets(self):
        cluster, manager = build()
        manager.crash(2)
        cluster.sim.run(until=us(1000))
        manager.recover(2)
        cluster.sim.run(until=cluster.sim.now + us(2000))
        assert 2 in cluster.nodes[0].engine.peers
        assert 2 in cluster.nodes[1].engine.peers
        # New writes replicate to the rejoined node again.
        cluster.write(0, "k", "v3")
        assert cluster.nodes[2].kv.volatile_read("k").value == "v3"

    def test_designated_node_is_lowest_alive(self):
        cluster, manager = build()
        assert manager.designated_node(exclude=0) == 1
        manager.crash(1)
        assert manager.designated_node(exclude=0) == 2

    def test_no_alive_node_raises(self):
        cluster, manager = build(nodes=2)
        manager.crash(1)
        with pytest.raises(RecoveryError):
            manager.designated_node(exclude=0)

    def test_catchup_only_ships_missed_entries(self):
        cluster, manager = build()
        cluster.write(0, "k", "before-crash")
        cluster.sim.run(until=cluster.sim.now + us(100))
        serial_before = cluster.nodes[2].kv.log.last_serial
        manager.crash(2)
        cluster.sim.run(until=cluster.sim.now + us(1000))
        cluster.write(0, "k", "while-down")
        entries = cluster.nodes[0].kv.log.entries_since(serial_before)
        assert [e.value for e in entries] == ["while-down"]
