"""Tests for protocol configuration presets (Fig. 12 ablations)."""

import pytest

from repro.core.config import (ABLATION_CONFIGS, B_BATCHING, B_BROADCAST,
                               COMBINED, COMBINED_BATCHING, MINOS_B,
                               MINOS_O, ProtocolConfig, config_by_name)
from repro.errors import ConfigError


class TestNames:
    def test_canonical_names(self):
        assert MINOS_B.name == "MINOS-B"
        assert MINOS_O.name == "MINOS-O"
        assert COMBINED.name == "Combined"
        assert B_BROADCAST.name == "MINOS-B+broadcast"
        assert B_BATCHING.name == "MINOS-B+batching"
        assert COMBINED_BATCHING.name == "Combined+batching"

    def test_ablation_set_matches_figure_12(self):
        assert len(ABLATION_CONFIGS) == 7
        assert ABLATION_CONFIGS[0] is MINOS_B
        assert ABLATION_CONFIGS[-1] is MINOS_O

    def test_lookup(self):
        assert config_by_name("minos-o") is MINOS_O
        with pytest.raises(ConfigError):
            config_by_name("MINOS-X")

    def test_flags(self):
        assert MINOS_O.offload and MINOS_O.batching and MINOS_O.broadcast
        assert not MINOS_B.offload
        assert COMBINED.offload and not COMBINED.batching
