"""Tests for logical timestamps (paper §III-A)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.timestamp import INITIAL_TS, NULL_TS, Timestamp

timestamps = st.builds(Timestamp,
                       version=st.integers(min_value=0, max_value=50),
                       node_id=st.integers(min_value=0, max_value=15))


class TestOrdering:
    def test_higher_version_is_newer(self):
        assert Timestamp(2, 0) > Timestamp(1, 4)

    def test_tie_broken_by_node_id(self):
        """Same version: the higher node_id wins (paper §III-A)."""
        assert Timestamp(3, 4) > Timestamp(3, 2)

    def test_equality(self):
        assert Timestamp(1, 1) == Timestamp(1, 1)
        assert Timestamp(1, 1) != Timestamp(1, 2)

    @given(a=timestamps, b=timestamps)
    def test_total_order(self, a, b):
        assert (a < b) + (a == b) + (a > b) == 1

    @given(a=timestamps, b=timestamps, c=timestamps)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(ts=timestamps)
    def test_null_is_older_than_everything(self, ts):
        assert NULL_TS < ts


class TestLifecycle:
    def test_next_for_bumps_version_and_stamps_node(self):
        ts = Timestamp(7, 2).next_for(4)
        assert ts == Timestamp(8, 4)

    def test_initial_and_null(self):
        assert INITIAL_TS == Timestamp(0, 0)
        assert NULL_TS.is_null
        assert not INITIAL_TS.is_null

    def test_hashable_and_frozen(self):
        ts = Timestamp(1, 2)
        assert hash(ts) == hash(Timestamp(1, 2))
        with pytest.raises(AttributeError):
            ts.version = 5

    def test_str(self):
        assert str(Timestamp(3, 1)) == "<v3@n1>"
