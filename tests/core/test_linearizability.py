"""Cross-cutting consistency checks on simulated histories.

These tests run concurrent workloads on the full engines (not the
abstract spec) and check linearizability-flavoured properties of the
observed history: reads never see uncommitted or rolled-back data, all
replicas converge, and committed writes are never lost.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ALL_MODELS, LIN_SYNCH, MINOS_B, MINOS_O
from repro.cluster.cluster import MinosCluster
from repro.hw.params import MachineParams


def run_random_history(config, model, seed, nodes=3, ops=24, keys=2):
    """Drive a random mix of writes/reads; return observations."""
    cluster = MinosCluster(model=model, config=config,
                           params=MachineParams(nodes=nodes))
    key_names = [f"k{i}" for i in range(keys)]
    cluster.load_records([(k, "init") for k in key_names])
    sim = cluster.sim
    rng = random.Random(seed)
    written = set()
    reads = []

    def driver(node_id, stream):
        for op, key, value in stream:
            if op == "w":
                result = yield from \
                    cluster.nodes[node_id].engine.client_write(key, value)
                if not result.obsolete:
                    written.add(value)
            else:
                result = yield from \
                    cluster.nodes[node_id].engine.client_read(key)
                reads.append((key, result.value))

    streams = {n: [] for n in range(nodes)}
    for i in range(ops):
        node = rng.randrange(nodes)
        key = rng.choice(key_names)
        if rng.random() < 0.6:
            streams[node].append(("w", key, f"v{i}@n{node}"))
        else:
            streams[node].append(("r", key, None))
    procs = [sim.spawn(driver(n, streams[n])) for n in range(nodes)]
    sim.run()
    assert all(p.triggered for p in procs)
    return cluster, written, reads, key_names


ARCHES = [MINOS_B, MINOS_O]


class TestHistories:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_replicas_converge(self, config, model):
        cluster, _written, _reads, keys = run_random_history(
            config, model, seed=1)
        for key in keys:
            reference = cluster.nodes[0].kv.volatile_read(key)
            for node in cluster.nodes:
                versioned = node.kv.volatile_read(key)
                assert versioned.ts == reference.ts, key
                assert versioned.value == reference.value, key

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_reads_only_see_written_values(self, config):
        _cluster, _written, reads, _keys = run_random_history(
            config, LIN_SYNCH, seed=2)
        for key, value in reads:
            assert value == "init" or value.startswith("v"), (key, value)

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_final_value_is_some_committed_write(self, config, seed):
        cluster, written, _reads, keys = run_random_history(
            config, LIN_SYNCH, seed=seed)
        for key in keys:
            final = cluster.nodes[0].kv.volatile_read(key).value
            assert final == "init" or final in written

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_convergence_synch_baseline(self, seed):
        cluster, _w, _r, keys = run_random_history(
            MINOS_B, LIN_SYNCH, seed=seed, ops=15)
        for key in keys:
            versions = {cluster.nodes[n].kv.volatile_read(key).ts
                        for n in range(3)}
            assert len(versions) == 1

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_convergence_synch_offload(self, seed):
        cluster, _w, _r, keys = run_random_history(
            MINOS_O, LIN_SYNCH, seed=seed, ops=15)
        for key in keys:
            versions = {cluster.nodes[n].kv.volatile_read(key).ts
                        for n in range(3)}
            assert len(versions) == 1

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_durable_state_matches_volatile_at_quiescence(self, config):
        cluster, _w, _r, keys = run_random_history(config, LIN_SYNCH,
                                                   seed=6)
        for key in keys:
            for node in cluster.nodes:
                volatile = node.kv.volatile_read(key).value
                assert node.kv.durable_value(key) == volatile
