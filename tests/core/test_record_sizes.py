"""Tests for variable per-write record sizes.

The paper fixes 1 KB records (the YCSB default); the engines also accept
a per-write payload size, scaling wire serialization, LLC, NVM, and
vFIFO/dFIFO costs accordingly.
"""

import pytest

from repro import LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster, YcsbWorkload
from repro.errors import ConfigError
from repro.hw.params import KB, MachineParams

ARCHES = [MINOS_B, MINOS_O]


def cluster(config):
    c = MinosCluster(model=LIN_SYNCH, config=config,
                     params=MachineParams(nodes=3))
    c.load_records([("k", "v0")])
    return c


class TestEngineSizes:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_latency_scales_with_size(self, config):
        c = cluster(config)
        small = c.sim.run_process(
            c.nodes[0].engine.client_write("k", "s", size=256))
        large = c.sim.run_process(
            c.nodes[0].engine.client_write("k", "l", size=16 * KB))
        assert large.latency > small.latency * 2

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_default_size_unchanged(self, config):
        """size=None must behave exactly like the 1 KB default."""
        c1, c2 = cluster(config), cluster(config)
        explicit = c1.sim.run_process(
            c1.nodes[0].engine.client_write("k", "v", size=KB))
        default = c2.sim.run_process(
            c2.nodes[0].engine.client_write("k", "v"))
        assert explicit.latency == pytest.approx(default.latency)

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_mixed_sizes_converge(self, config):
        c = cluster(config)
        sim = c.sim
        procs = [
            sim.spawn(c.nodes[0].engine.client_write("k", "small",
                                                     size=128)),
            sim.spawn(c.nodes[1].engine.client_write("k", "big",
                                                     size=4 * KB)),
        ]
        sim.run()
        assert all(p.triggered for p in procs)
        reference = c.nodes[0].kv.volatile_read("k")
        for node in c.nodes:
            assert node.kv.volatile_read("k").ts == reference.ts


class TestWorkloadSizes:
    def test_value_size_flows_to_ops(self):
        wl = YcsbWorkload(records=10, requests_per_client=20,
                          write_fraction=1.0, value_size=4096)
        assert all(op.size == 4096 for op in wl.ops_for(0, 0))

    def test_value_size_validated(self):
        with pytest.raises(ConfigError):
            YcsbWorkload(value_size=0)

    def test_bigger_records_cost_throughput(self):
        def tput(size):
            c = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                             params=MachineParams(nodes=3))
            wl = YcsbWorkload(records=30, requests_per_client=15,
                              write_fraction=1.0, value_size=size, seed=5)
            return c.run_workload(wl, clients_per_node=2).write_throughput()

        assert tput(256) > tput(8 * KB) * 1.3
