"""Tests for shared engine machinery: WriteTxn bookkeeping, exclusion."""

import pytest

from repro.core.engine import WriteTxn
from repro.core.messages import Message, MsgType
from repro.core.timestamp import Timestamp
from repro.errors import ProtocolError
from repro.sim import Simulator


def ack(type, src, write_id=1):
    return Message(type=type, key="k", ts=Timestamp(1, 0), src=src,
                   write_id=write_id)


@pytest.fixture
def sim():
    return Simulator()


class TestAckBookkeeping:
    def test_all_acks_fires_when_every_follower_answered(self, sim):
        txn = WriteTxn(sim, 1, "k", Timestamp(1, 0), expected=[1, 2, 3])
        txn.on_ack(ack(MsgType.ACK, 1))
        txn.on_ack(ack(MsgType.ACK, 2))
        assert not txn.all_acks.triggered
        txn.on_ack(ack(MsgType.ACK, 3))
        assert txn.all_acks.triggered

    def test_ack_c_and_ack_p_tracked_separately(self, sim):
        txn = WriteTxn(sim, 1, "k", Timestamp(1, 0), expected=[1, 2])
        txn.on_ack(ack(MsgType.ACK_C, 1))
        txn.on_ack(ack(MsgType.ACK_C, 2))
        assert txn.all_ack_cs.triggered
        assert not txn.all_ack_ps.triggered
        txn.on_ack(ack(MsgType.ACK_P, 1))
        txn.on_ack(ack(MsgType.ACK_P, 2))
        assert txn.all_ack_ps.triggered

    def test_duplicate_ack_raises(self, sim):
        txn = WriteTxn(sim, 1, "k", Timestamp(1, 0), expected=[1, 2])
        txn.on_ack(ack(MsgType.ACK, 1))
        with pytest.raises(ProtocolError, match="duplicate"):
            txn.on_ack(ack(MsgType.ACK, 1))

    def test_non_ack_rejected(self, sim):
        txn = WriteTxn(sim, 1, "k", Timestamp(1, 0), expected=[1])
        with pytest.raises(ProtocolError):
            txn.on_ack(ack(MsgType.VAL, 1))

    def test_last_ack_time_recorded(self, sim):
        txn = WriteTxn(sim, 1, "k", Timestamp(1, 0), expected=[1])

        def proc():
            yield sim.timeout(5.0)
            txn.on_ack(ack(MsgType.ACK, 1))

        sim.run_process(proc())
        assert txn.last_ack_at == 5.0


class TestExclusion:
    """Failure handling (§III-E): declared-failed nodes stop blocking."""

    def test_exclusion_completes_waiting_txn(self, sim):
        txn = WriteTxn(sim, 1, "k", Timestamp(1, 0), expected=[1, 2, 3])
        txn.on_ack(ack(MsgType.ACK, 1))
        txn.on_ack(ack(MsgType.ACK, 2))
        txn.exclude(3)
        assert txn.all_acks.triggered

    def test_exclusion_of_already_acked_node_is_noop(self, sim):
        txn = WriteTxn(sim, 1, "k", Timestamp(1, 0), expected=[1, 2])
        txn.on_ack(ack(MsgType.ACK, 1))
        txn.exclude(1)
        assert not txn.all_acks.triggered  # node 2 still owed
        txn.on_ack(ack(MsgType.ACK, 2))
        assert txn.all_acks.triggered

    def test_exclusion_of_stranger_ignored(self, sim):
        txn = WriteTxn(sim, 1, "k", Timestamp(1, 0), expected=[1])
        txn.exclude(99)
        assert not txn.all_acks.triggered

    def test_followers_property(self, sim):
        txn = WriteTxn(sim, 1, "k", Timestamp(1, 0), expected=[1, 2, 3])
        assert txn.followers == 3
