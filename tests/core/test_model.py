"""Tests for the DDP model policy table (Figs. 2-3 deltas)."""

import pytest

from repro.core.model import (ALL_MODELS, LIN_EVENT, LIN_RENF, LIN_SCOPE,
                              LIN_STRICT, LIN_SYNCH, model_by_name)


class TestPolicies:
    def test_split_acks(self):
        assert LIN_STRICT.split_acks and LIN_RENF.split_acks
        assert not LIN_SYNCH.split_acks
        assert not LIN_EVENT.split_acks and not LIN_SCOPE.split_acks

    def test_tracks_persistency(self):
        assert LIN_SYNCH.tracks_persistency
        assert LIN_STRICT.tracks_persistency
        assert LIN_RENF.tracks_persistency
        assert not LIN_EVENT.tracks_persistency
        assert not LIN_SCOPE.tracks_persistency

    def test_persist_in_critical_path(self):
        assert LIN_SYNCH.persist_in_critical_path
        assert LIN_STRICT.persist_in_critical_path
        assert not LIN_RENF.persist_in_critical_path
        assert not LIN_EVENT.persist_in_critical_path

    def test_persistency_spin_on_obsolete(self):
        """The weak models skip PersistencySpin (§III-C)."""
        assert LIN_RENF.persistency_spin_on_obsolete
        assert not LIN_EVENT.persistency_spin_on_obsolete
        assert not LIN_SCOPE.persistency_spin_on_obsolete

    def test_client_waits_for_persist(self):
        assert LIN_SYNCH.client_waits_for_persist
        assert LIN_STRICT.client_waits_for_persist
        assert not LIN_RENF.client_waits_for_persist

    def test_rdlock_waits_for_persist(self):
        """Synch (combined VAL) and REnf hold the RDLock until
        persistency completes; Strict releases it at VAL_C."""
        assert LIN_SYNCH.rdlock_waits_for_persist
        assert LIN_RENF.rdlock_waits_for_persist
        assert not LIN_STRICT.rdlock_waits_for_persist

    def test_scopes(self):
        assert LIN_SCOPE.uses_scopes
        assert not LIN_SYNCH.uses_scopes


class TestNaming:
    def test_names(self):
        assert LIN_SYNCH.name == "<Lin, Synch>"
        assert LIN_RENF.name == "<Lin, REnf>"
        assert [m.name for m in ALL_MODELS] == [
            "<Lin, Synch>", "<Lin, Strict>", "<Lin, REnf>",
            "<Lin, Event>", "<Lin, Scope>"]

    def test_lookup_short_and_full(self):
        assert model_by_name("synch") is LIN_SYNCH
        assert model_by_name("<Lin, Strict>") is LIN_STRICT

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            model_by_name("sequential")
