"""Behavioural tests of the MINOS-B engine against the paper's Figure 2."""

import pytest

from repro import ALL_MODELS, LIN_RENF, LIN_STRICT, LIN_SYNCH, MINOS_B
from repro.cluster.cluster import MinosCluster
from repro.core.timestamp import Timestamp
from repro.hw.params import MachineParams


def cluster(model=LIN_SYNCH, nodes=3):
    c = MinosCluster(model=model, config=MINOS_B,
                     params=MachineParams(nodes=nodes))
    c.load_records([("k", "v0")])
    return c


class TestSingleWrite:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_write_replicates_everywhere(self, model):
        c = cluster(model=model)
        result = c.write(0, "k", "v1")
        assert not result.obsolete
        assert result.ts == Timestamp(1, 0)
        for node in c.nodes:
            assert node.kv.volatile_read("k").value == "v1"
            assert node.kv.volatile_read("k").ts == Timestamp(1, 0)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_write_is_durable_everywhere_after_quiescence(self, model):
        c = cluster(model=model)
        c.write(0, "k", "v1")
        c.sim.run()  # drain background persists (Event/Scope/REnf)
        for node in c.nodes:
            assert node.kv.durable_value("k") == "v1"

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_rdlock_free_after_quiescence(self, model):
        c = cluster(model=model)
        c.write(0, "k", "v1")
        c.sim.run()
        for node in c.nodes:
            assert node.kv.meta("k").rdlock_free

    def test_synch_glb_timestamps_converge(self):
        c = cluster(model=LIN_SYNCH)
        c.write(1, "k", "v1")
        c.sim.run()
        for node in c.nodes:
            meta = node.kv.meta("k")
            assert meta.volatile_ts == Timestamp(1, 1)
            assert meta.glb_volatile_ts == Timestamp(1, 1)
            assert meta.glb_durable_ts == Timestamp(1, 1)

    def test_timestamps_monotonic_across_writes(self):
        c = cluster()
        first = c.write(0, "k", "a")
        second = c.write(2, "k", "b")
        assert second.ts > first.ts
        assert second.ts == Timestamp(2, 2)


class TestReads:
    def test_read_returns_latest_committed(self):
        c = cluster()
        c.write(0, "k", "new")
        result = c.read(2, "k")
        assert result.value == "new"
        assert result.ts == Timestamp(1, 0)

    def test_read_of_missing_key(self):
        c = cluster()
        result = c.read(0, "nope")
        assert result.value is None

    def test_read_stalls_while_rdlock_held(self):
        """§III-D: a read stalls only while the record's RDLock is taken."""
        c = cluster()
        sim = c.sim
        outcomes = {}

        def writer():
            yield from c.nodes[0].engine.client_write("k", "v1")
            outcomes["write_done"] = sim.now

        def reader():
            # Start after the write grabbed the lock but before it ends.
            yield sim.timeout(2e-6)
            result = yield from c.nodes[0].engine.client_read("k")
            outcomes["read_done"] = sim.now
            outcomes["read_value"] = result.value

        sim.spawn(writer())
        sim.spawn(reader())
        sim.run()
        assert c.metrics.counters.read_stalls == 1
        # The read waits until the RDLock is released, which Fig. 2 places
        # after all ACKs (consistency + persistency complete) and just
        # before the VALs go out — so the read never sees the old value.
        assert outcomes["read_done"] > 5e-6
        assert outcomes["read_value"] == "v1"


class TestObsoleteWrites:
    def test_concurrent_writes_converge_to_newest(self):
        """Two same-key writes from different nodes: both complete, all
        replicas converge on the newer timestamp (higher node id wins a
        version tie)."""
        c = cluster()
        sim = c.sim
        procs = [sim.spawn(c.nodes[n].engine.client_write("k", f"v-from-{n}"))
                 for n in (0, 2)]
        sim.run()
        assert all(p.triggered for p in procs)
        winner = c.nodes[0].kv.volatile_read("k")
        assert winner.ts == Timestamp(1, 2)  # tie on version 1: node 2 wins
        for node in c.nodes:
            versioned = node.kv.volatile_read("k")
            assert versioned.ts == winner.ts
            assert versioned.value == "v-from-2"

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_storm_of_conflicting_writes_converges(self, model):
        c = cluster(model=model, nodes=4)
        sim = c.sim
        procs = []
        for round_ in range(3):
            for n in range(4):
                procs.append(sim.spawn(
                    c.nodes[n].engine.client_write("k", f"r{round_}n{n}")))
        sim.run()
        assert all(p.triggered for p in procs)
        reference = c.nodes[0].kv.volatile_read("k")
        for node in c.nodes:
            versioned = node.kv.volatile_read("k")
            assert versioned.ts == reference.ts
            assert versioned.value == reference.value
        # The winning value is also the durable one everywhere.
        for node in c.nodes:
            assert node.kv.durable_value("k") == reference.value

    def test_obsolete_write_reports_back(self):
        """A write overtaken before its final timestamp check returns as
        obsolete without sending INVs."""
        c = cluster()
        sim = c.sim
        results = []

        def slow_then_fast():
            # Node 0 and node 1 race on the same key; ties favour node 1,
            # so node 0's write may be snatched/obsoleted.
            p0 = sim.spawn(c.nodes[0].engine.client_write("k", "a"))
            p1 = sim.spawn(c.nodes[1].engine.client_write("k", "b"))
            r0 = yield p0
            r1 = yield p1
            results.extend([r0, r1])

        sim.run_process(slow_then_fast())
        sim.run()
        # Either both committed (ordered) or one was cut short; in every
        # case the replicas agree afterwards.
        reference = c.nodes[0].kv.volatile_read("k").ts
        for node in c.nodes:
            assert node.kv.volatile_read("k").ts == reference


class TestStrictSpecifics:
    def test_strict_sends_val_c_and_val_p(self):
        c = cluster(model=LIN_STRICT)
        c.write(0, "k", "v1")
        c.sim.run()
        # 2 followers x (VAL_C + VAL_P)
        assert c.metrics.counters.vals_sent == 4

    def test_renf_client_returns_before_vals(self):
        """REnf: the client response precedes the VAL round."""
        c = cluster(model=LIN_RENF)
        result = c.write(0, "k", "v1")
        meta0 = c.nodes[0].kv.meta("k")
        # Client returned; followers may not have been validated yet, but
        # after draining everything converges and unlocks.
        c.sim.run()
        assert meta0.rdlock_free
        assert meta0.glb_durable_ts == result.ts


class TestBatchedBaseline:
    """MINOS-B+batching (a Fig. 12 point) must stay protocol-correct."""

    def test_batched_writes_replicate_and_unlock(self):
        from repro import B_BATCHING
        c = MinosCluster(model=LIN_SYNCH, config=B_BATCHING,
                         params=MachineParams(nodes=3))
        c.load_records([("k", "v0")])
        c.write(0, "k", "v1")
        c.sim.run()
        for node in c.nodes:
            assert node.kv.volatile_read("k").value == "v1"
            assert node.kv.meta("k").rdlock_free
            assert node.kv.durable_value("k") == "v1"

    def test_broadcast_baseline_equivalent(self):
        from repro import B_BROADCAST
        c = MinosCluster(model=LIN_SYNCH, config=B_BROADCAST,
                         params=MachineParams(nodes=3))
        c.load_records([("k", "v0")])
        c.write(1, "k", "v1")
        c.sim.run()
        for node in c.nodes:
            assert node.kv.volatile_read("k").value == "v1"
