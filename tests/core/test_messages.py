"""Tests for protocol messages."""

from repro.core.messages import NETWORK_LEGAL, Message, MsgType
from repro.core.timestamp import Timestamp


class TestMsgType:
    def test_ack_family(self):
        assert MsgType.ACK.is_ack and MsgType.ACK_C.is_ack
        assert MsgType.ACK_P.is_ack
        assert not MsgType.INV.is_ack

    def test_val_family(self):
        assert MsgType.VAL.is_val and MsgType.VAL_C.is_val
        assert MsgType.VAL_P.is_val
        assert not MsgType.ACK.is_val

    def test_batched_ack_never_on_network(self):
        assert MsgType.BATCHED_ACK not in NETWORK_LEGAL
        assert MsgType.INV in NETWORK_LEGAL


class TestMessage:
    def test_reply_preserves_transaction_identity(self):
        inv = Message(type=MsgType.INV, key="k", ts=Timestamp(1, 0),
                      src=0, value="v", scope=9)
        ack = inv.reply(MsgType.ACK_C, src=3)
        assert ack.write_id == inv.write_id
        assert ack.key == "k" and ack.ts == inv.ts
        assert ack.scope == 9 and ack.src == 3
        assert ack.value is None  # payload does not ride on replies

    def test_write_ids_unique(self):
        a = Message(type=MsgType.INV, key="k", ts=Timestamp(1, 0), src=0)
        b = Message(type=MsgType.INV, key="k", ts=Timestamp(1, 0), src=0)
        assert a.write_id != b.write_id

    def test_scoped_str(self):
        msg = Message(type=MsgType.INV, key="k", ts=Timestamp(1, 0),
                      src=0, scope=4)
        assert msg.is_scoped
        assert "[sc4]" in str(msg)
