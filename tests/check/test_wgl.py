"""WGL checker unit tests + hypothesis properties (ISSUE 5 satellite).

The property tests pin the checker's two defining behaviors: generated
known-linearizable histories always pass, and injecting a stale read
into a real-time-ordered history always fails — with shrinking
producing a sub-history that still fails and is 1-minimal.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import (History, HistoryOp, check_key_history,
                         check_linearizability, shrink_history)


def op(op_id, kind, key, value, invoked, responded, obsolete=False,
       client="c"):
    return HistoryOp(op_id=op_id, client=client, kind=kind, key=key,
                     value=value, invoked=invoked, responded=responded,
                     obsolete=obsolete)


class TestRegisterSemantics:
    def test_sequential_write_then_read_passes(self):
        history = History([
            op(0, "write", "k", "v1", 0.0, 1.0),
            op(1, "read", "k", "v1", 2.0, 3.0),
        ])
        assert check_linearizability(history).ok

    def test_stale_read_fails(self):
        history = History([
            op(0, "write", "k", "v1", 0.0, 1.0),
            op(1, "write", "k", "v2", 2.0, 3.0),
            op(2, "read", "k", "v1", 4.0, 5.0),
        ])
        report = check_linearizability(history)
        assert not report.ok
        assert report.failing_keys == ["k"]

    def test_read_of_never_written_value_fails(self):
        history = History([op(0, "read", "k", "ghost", 0.0, 1.0)])
        assert not check_linearizability(history).ok

    def test_read_before_any_write_returns_initial(self):
        history = History([op(0, "read", "k", None, 0.0, 1.0)])
        assert check_linearizability(history).ok
        assert not check_linearizability(
            history, initial={"k": "loaded"}).ok
        history2 = History([op(0, "read", "k", "loaded", 0.0, 1.0)])
        assert check_linearizability(history2,
                                     initial={"k": "loaded"}).ok

    def test_concurrent_writes_allow_either_order(self):
        for winner in ("v1", "v2"):
            history = History([
                op(0, "write", "k", "v1", 0.0, 5.0),
                op(1, "write", "k", "v2", 0.0, 5.0),
                op(2, "read", "k", winner, 6.0, 7.0),
            ])
            assert check_linearizability(history).ok, winner

    def test_obsolete_write_is_a_no_op(self):
        # The absorbed write's value must NOT satisfy a later read,
        # and its presence must not break an otherwise-valid history.
        history = History([
            op(0, "write", "k", "v1", 0.0, 1.0),
            op(1, "write", "k", "lost", 2.0, 3.0, obsolete=True),
            op(2, "read", "k", "v1", 4.0, 5.0),
        ])
        assert check_linearizability(history).ok
        stale = History([
            op(0, "write", "k", "v1", 0.0, 1.0),
            op(1, "write", "k", "lost", 2.0, 3.0, obsolete=True),
            op(2, "read", "k", "lost", 4.0, 5.0),
        ])
        assert not check_linearizability(stale).ok

    def test_pending_write_may_or_may_not_take_effect(self):
        pending = op(1, "write", "k", "v2", 2.0, None)
        observed = History([
            op(0, "write", "k", "v1", 0.0, 1.0), pending,
            op(2, "read", "k", "v2", 3.0, 4.0),
        ])
        assert check_linearizability(observed).ok
        unobserved = History([
            op(0, "write", "k", "v1", 0.0, 1.0), pending,
            op(2, "read", "k", "v1", 3.0, 4.0),
        ])
        assert check_linearizability(unobserved).ok

    def test_pending_write_cannot_linearize_before_invocation(self):
        # The pending write was invoked after the read responded, so
        # the read can never observe it.
        history = History([
            op(0, "read", "k", "v9", 0.0, 1.0),
            op(1, "write", "k", "v9", 2.0, None),
        ])
        assert not check_linearizability(history).ok

    def test_keys_check_independently(self):
        history = History([
            op(0, "write", "a", "v1", 0.0, 1.0),
            op(1, "write", "b", "w1", 0.0, 1.0),
            op(2, "read", "a", "v1", 2.0, 3.0),
            op(3, "read", "b", "bogus", 2.0, 3.0),
        ])
        report = check_linearizability(history)
        assert report.keys["a"].ok
        assert not report.keys["b"].ok

    def test_witness_is_a_valid_linearization_order(self):
        ops = [
            op(0, "write", "k", "v1", 0.0, 4.0),
            op(1, "write", "k", "v2", 0.0, 4.0),
            op(2, "read", "k", "v1", 5.0, 6.0),
        ]
        report = check_key_history(ops, key="k")
        assert report.ok
        # v2 must be linearized before v1 for the read to see v1.
        assert report.witness.index(1) < report.witness.index(0)


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------

KEYS = ("a", "b")


@st.composite
def sequential_ops(draw, min_writes=0, max_ops=10, max_jitter=5.0):
    """Ops generated by *executing* a register sequentially (op i takes
    effect at time i), then widening each interval around its
    linearization point — widening preserves linearizability, so the
    result is linearizable by construction."""
    n = draw(st.integers(min_value=2, max_value=max_ops))
    registers = {}
    ops = []
    writes = 0
    for i in range(n):
        key = draw(st.sampled_from(KEYS))
        is_write = draw(st.booleans())
        before = draw(st.floats(min_value=0.0, max_value=max_jitter,
                                allow_nan=False))
        after = draw(st.floats(min_value=0.0, max_value=max_jitter,
                               allow_nan=False))
        point = float(i)
        if is_write:
            value = f"v{i}"
            registers[key] = value
            writes += 1
        else:
            value = registers.get(key)
        ops.append(op(i, "write" if is_write else "read", key, value,
                      point - before, point + after))
    if writes < min_writes:
        for i in range(min_writes - writes):
            extra = n + i
            key = draw(st.sampled_from(KEYS))
            ops.append(op(extra, "write", key, f"v{extra}",
                          float(extra), float(extra)))
    return ops


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(sequential_ops())
    def test_known_linearizable_histories_always_pass(self, ops):
        assert check_linearizability(History(ops)).ok

    @settings(max_examples=80, deadline=None)
    @given(sequential_ops(min_writes=2, max_jitter=0.49))
    def test_injected_stale_read_always_fails(self, ops):
        # Jitter < 0.5 keeps real-time order == execution order, so
        # any non-final write's value is stale for a read issued after
        # everything responded.
        writes_by_key = {}
        for o in ops:
            if o.kind == "write":
                writes_by_key.setdefault(o.key, []).append(o)
        key, stale = next(
            ((k, ws[0]) for k, ws in writes_by_key.items()
             if len(ws) >= 2),
            (None, None))
        if key is None:  # a single write per key: pick cross-key pair
            key, ws = next(iter(writes_by_key.items()))
            stale = None  # read a value never written to this key
        end = max(o.responded for o in ops) + 1.0
        value = stale.value if stale is not None else "never-written"
        bad = ops + [op(10_000, "read", key, value, end, end + 1.0)]
        assert not check_linearizability(History(bad)).ok

    @settings(max_examples=40, deadline=None)
    @given(sequential_ops(min_writes=2, max_jitter=0.49))
    def test_shrinking_preserves_failure_and_is_1_minimal(self, ops):
        writes_by_key = {}
        for o in ops:
            if o.kind == "write":
                writes_by_key.setdefault(o.key, []).append(o)
        key, stale = next(
            ((k, ws[0]) for k, ws in writes_by_key.items()
             if len(ws) >= 2),
            (None, None))
        if key is None:
            key = next(iter(writes_by_key))
            stale = None
        end = max(o.responded for o in ops) + 1.0
        value = stale.value if stale is not None else "never-written"
        failing = [o for o in ops if o.key == key]
        failing = failing + [op(10_000, "read", key, value, end,
                                end + 1.0)]
        shrunk = shrink_history(failing)
        assert not check_key_history(shrunk).ok
        assert len(shrunk) <= len(failing)
        # 1-minimality: removing any single op makes it pass.
        for i in range(len(shrunk)):
            rest = shrunk[:i] + shrunk[i + 1:]
            assert check_key_history(rest).ok
