"""Durable-linearizability rules, unit-tested on crafted histories.

One class per rule family: floors (what must survive a crash under
each persistency model), snapshot checking (floor + validity), and the
post-recovery read rules.
"""

from repro import (LIN_EVENT, LIN_RENF, LIN_SCOPE, LIN_STRICT, LIN_SYNCH,
                   Timestamp)
from repro.check import (History, HistoryOp, check_durability,
                         durability_floors,
                         post_recovery_read_violations)

CRASH = 100.0


def write(op_id, key, value, invoked, responded, version,
          obsolete=False, scope=None):
    ts = None if responded is None else Timestamp(version, 0)
    return HistoryOp(op_id=op_id, client="c", kind="write", key=key,
                     value=value, invoked=invoked, responded=responded,
                     ts=ts, obsolete=obsolete, scope=scope)


def read(op_id, key, value, invoked, responded, version=None):
    ts = None if version is None else Timestamp(version, 0)
    return HistoryOp(op_id=op_id, client="c", kind="read", key=key,
                     value=value, invoked=invoked, responded=responded,
                     ts=ts)


def persist(op_id, scope, invoked, responded):
    return HistoryOp(op_id=op_id, client="c", kind="persist", key=None,
                     value=None, invoked=invoked, responded=responded,
                     scope=scope)


class TestFloors:
    def test_synch_floors_every_acked_write(self):
        history = History([
            write(0, "k", "v1", 0.0, 1.0, version=1),
            write(1, "k", "v2", 2.0, 3.0, version=2),
        ])
        for model in (LIN_SYNCH, LIN_STRICT):
            floors = durability_floors(model, history, CRASH)
            ts, evidence = floors["k"]
            assert ts == Timestamp(2, 0)
            assert evidence == (1,)

    def test_pending_and_post_crash_writes_do_not_floor(self):
        history = History([
            write(0, "k", "v1", 0.0, None, version=None),  # pending
            write(1, "k", "v2", CRASH + 1, CRASH + 2, version=2),
        ])
        assert durability_floors(LIN_SYNCH, history, CRASH) == {}

    def test_obsolete_write_does_not_floor(self):
        history = History([
            write(0, "k", "lost", 0.0, 1.0, version=1, obsolete=True),
        ])
        assert durability_floors(LIN_SYNCH, history, CRASH) == {}

    def test_renf_floors_read_values_not_acks(self):
        history = History([
            write(0, "k", "v1", 0.0, 1.0, version=1),
            read(1, "k", "v1", 2.0, 3.0, version=1),
            write(2, "q", "unread", 0.0, 1.0, version=1),
        ])
        floors = durability_floors(LIN_RENF, history, CRASH)
        assert floors["k"][0] == Timestamp(1, 0)
        assert "q" not in floors  # acked but never observed by a read

    def test_event_has_no_floor(self):
        history = History([
            write(0, "k", "v1", 0.0, 1.0, version=1),
            read(1, "k", "v1", 2.0, 3.0, version=1),
        ])
        assert durability_floors(LIN_EVENT, history, CRASH) == {}

    def test_scope_closure_floors_writes_acked_before_persist(self):
        history = History([
            write(0, "k", "v1", 0.0, 1.0, version=1, scope=1),
            write(1, "k", "v2", 12.0, 13.0, version=2, scope=1),
            write(2, "q", "w1", 0.0, 1.0, version=1, scope=2),
            persist(3, scope=1, invoked=10.0, responded=11.0),
        ])
        floors = durability_floors(LIN_SCOPE, history, CRASH)
        # v1 was acked before the persist was invoked; v2 and the
        # scope-2 write were not closed by it.
        assert floors["k"][0] == Timestamp(1, 0)
        assert floors["k"][1] == (0, 3)
        assert "q" not in floors

    def test_scope_persist_after_crash_does_not_floor(self):
        history = History([
            write(0, "k", "v1", 0.0, 1.0, version=1, scope=1),
            persist(1, scope=1, invoked=2.0, responded=CRASH + 1),
        ])
        assert durability_floors(LIN_SCOPE, history, CRASH) == {}


class TestSnapshotCheck:
    def history(self):
        return History([
            write(0, "k", "v1", 0.0, 1.0, version=1),
            write(1, "k", "v2", 2.0, 3.0, version=2),
        ])

    def test_surviving_floor_version_passes(self):
        snapshot = {"k": (Timestamp(2, 0), "v2")}
        assert check_durability(LIN_SYNCH, self.history(), CRASH,
                                snapshot).ok

    def test_newer_surviving_version_discharges_floor(self):
        snapshot = {"k": (Timestamp(3, 0), "v3-pending")}
        history = self.history()
        history.append(write(2, "k", "v3-pending", 4.0, None,
                             version=None))
        assert check_durability(LIN_SYNCH, history, CRASH, snapshot).ok

    def test_lost_acked_write_is_floor_violation(self):
        snapshot = {"k": (Timestamp(1, 0), "v1")}  # v2 lost
        report = check_durability(LIN_SYNCH, self.history(), CRASH,
                                  snapshot)
        assert not report.ok
        assert report.violations[0].rule == "durability-floor"
        assert report.violations[0].evidence == (1,)

    def test_empty_nvm_is_floor_violation(self):
        report = check_durability(LIN_SYNCH, self.history(), CRASH, {})
        assert not report.ok
        assert "retained nothing" in report.violations[0].detail

    def test_empty_nvm_passes_under_event(self):
        assert check_durability(LIN_EVENT, self.history(), CRASH, {}).ok

    def test_corrupt_value_is_validity_violation(self):
        snapshot = {"k": (Timestamp(2, 0), "garbage")}
        report = check_durability(LIN_SYNCH, self.history(), CRASH,
                                  snapshot)
        assert any(v.rule == "durability-validity"
                   for v in report.violations)

    def test_never_written_value_is_validity_violation(self):
        snapshot = {"k": (Timestamp(9, 9), "ghost")}
        report = check_durability(LIN_EVENT, self.history(), CRASH,
                                  snapshot)
        assert not report.ok
        assert report.violations[0].rule == "durability-validity"

    def test_pending_write_value_is_valid(self):
        # A pending write's version may be durable even though its ts
        # never reached the client — validity accepts it by value.
        history = self.history()
        history.append(write(2, "k", "v3", 4.0, None, version=None))
        snapshot = {"k": (Timestamp(3, 0), "v3")}
        assert check_durability(LIN_EVENT, history, CRASH, snapshot).ok

    def test_initial_record_value_is_valid(self):
        snapshot = {"fresh": (Timestamp(0, 0), "loaded")}
        assert check_durability(LIN_EVENT, History([]), CRASH, snapshot,
                                initial={"fresh": "loaded"}).ok


class TestPostRecoveryReads:
    def history(self):
        return History([
            write(0, "k", "v1", 0.0, 1.0, version=1),
            write(1, "k", "v2", 2.0, 3.0, version=2),
        ])

    def test_read_at_or_above_floor_passes(self):
        probe = read(10, "k", "v2", CRASH + 50, CRASH + 51, version=2)
        assert post_recovery_read_violations(
            LIN_SYNCH, self.history(), CRASH, [probe]) == []

    def test_read_below_floor_is_violation(self):
        probe = read(10, "k", "v1", CRASH + 50, CRASH + 51, version=1)
        violations = post_recovery_read_violations(
            LIN_SYNCH, self.history(), CRASH, [probe])
        assert violations and violations[0].rule == "post-recovery-read"
        assert 10 in violations[0].evidence

    def test_lost_key_read_is_violation_under_synch_only(self):
        probe = read(10, "k", None, CRASH + 50, CRASH + 51)
        assert post_recovery_read_violations(
            LIN_SYNCH, self.history(), CRASH, [probe])
        # Event never floors, so a lost key is legal there.
        assert post_recovery_read_violations(
            LIN_EVENT, self.history(), CRASH, [probe]) == []

    def test_fabricated_value_is_violation_under_every_model(self):
        probe = read(10, "k", "ghost", CRASH + 50, CRASH + 51,
                     version=7)
        for model in (LIN_SYNCH, LIN_STRICT, LIN_RENF, LIN_EVENT,
                      LIN_SCOPE):
            violations = post_recovery_read_violations(
                model, self.history(), CRASH, [probe])
            assert any("no client ever wrote" in v.detail
                       for v in violations), \
                model.name
