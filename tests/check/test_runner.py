"""End-to-end schedule/crash exploration, mutation tests, and the CLI.

The mutation tests are the harness's teeth: a deliberately planted
stale-read bug and a deliberately dropped persist must both be caught,
the former with a shrunk counterexample of at most 10 events
(acceptance criterion).
"""

import json

import pytest

from repro import MINOS_B, MINOS_O, run_check
from repro.cli import main
from repro.errors import ConfigError

QUICK = dict(nodes=3, ops_per_client=8, seeds=1, crash_trials=1)


class TestRunCheck:
    @pytest.mark.parametrize("arch", [MINOS_B, MINOS_O],
                             ids=["MINOS-B", "MINOS-O"])
    def test_clean_cluster_passes_with_phase_crashes(self, arch):
        report = run_check(model="synch", config=arch,
                           crash_points="phase", **QUICK)
        assert report.ok, report.to_dict()
        assert report.counterexample is None
        crashed = [r for r in report.runs if r.crash_at is not None]
        assert crashed, "phase exploration produced no crash runs"
        assert all(r.ops > 0 for r in report.runs)

    def test_crash_points_none_runs_baseline_only(self):
        report = run_check(model="event", config=MINOS_B,
                           crash_points="none", **QUICK)
        assert report.ok
        assert all(r.crash_at is None for r in report.runs)

    def test_report_json_round_trips(self):
        report = run_check(model="strict", config=MINOS_B,
                           crash_points="uniform", **QUICK)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["schema"] == "repro-check/1"
        assert payload["ok"] is True
        assert len(payload["runs"]) == len(report.runs)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigError):
            run_check(nodes=1)
        with pytest.raises(ConfigError):
            run_check(crash_points="everywhere")


def plant_stale_read_bug(cluster):
    """Node 0 serves every read of a key from the first version it ever
    cached — a classic forgotten-invalidation bug."""
    kv = cluster.nodes[0].kv
    first = {}
    real_write, real_read = kv.volatile_write, kv.volatile_read

    def spy_write(key, value, ts):
        ok = real_write(key, value, ts)
        if ok and key not in first:
            first[key] = kv.volatile_read(key)
        return ok

    def stale_read(key):
        return first.get(key, real_read(key))

    kv.volatile_write = spy_write
    kv.volatile_read = stale_read


def plant_lost_persist_bug(cluster):
    """The victim node acknowledges persists without writing NVM."""
    victim = cluster.nodes[-1].kv
    victim.persist = lambda key, value, ts, scope=None: None


class TestMutationCatches:
    def test_stale_read_bug_caught_with_small_counterexample(self):
        report = run_check(model="synch", config=MINOS_B,
                           ops_per_client=16, seeds=2,
                           crash_points="none",
                           setup=plant_stale_read_bug)
        assert not report.ok
        counterexample = report.counterexample
        assert counterexample is not None
        assert counterexample.kind == "linearizability"
        # Acceptance criterion: the shrunk counterexample is tiny.
        assert 1 <= len(counterexample.events) <= 10
        # The shrunk events must themselves still fail the checker.
        from repro.check import HistoryOp, check_key_history
        ops = [HistoryOp(op_id=e["op_id"], client=e["client"],
                         kind=e["kind"], key=e["key"], value=e["value"],
                         invoked=e["invoked"], responded=e["responded"],
                         obsolete=e["obsolete"])
               for e in counterexample.events]
        assert not check_key_history(ops).ok

    def test_lost_persist_bug_caught_by_durability_floor(self):
        report = run_check(model="synch", config=MINOS_B,
                           crash_points="uniform",
                           setup=plant_lost_persist_bug, **QUICK)
        assert not report.ok
        counterexample = report.counterexample
        assert counterexample is not None
        assert counterexample.kind == "durability"
        assert "durability-floor" in counterexample.detail

    def test_export_writes_trace_and_history(self, tmp_path):
        prefix = str(tmp_path / "counterexample")
        report = run_check(model="synch", config=MINOS_B,
                           crash_points="none", seeds=1, nodes=3,
                           ops_per_client=12,
                           setup=plant_stale_read_bug, export=prefix)
        assert not report.ok
        exported = report.counterexample.exported
        assert exported == [f"{prefix}.trace.json",
                            f"{prefix}.history.json"]
        with open(exported[1], encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["counterexample"]["kind"] == "linearizability"
        assert payload["history"], "full history must be exported"
        with open(exported[0], encoding="utf-8") as handle:
            trace = json.load(handle)
        assert trace["traceEvents"], "Perfetto trace must be non-empty"


class TestCli:
    def test_check_command_passes_on_clean_tree(self, capsys):
        code = main(["check", "--model", "synch", "--arch", "MINOS-B",
                     "--seeds", "1", "--ops", "8",
                     "--crash-points", "phase", "--crash-trials", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all histories (durable-)linearizable" in out

    def test_check_json_payload(self, capsys):
        code = main(["check", "--model", "event", "--offload",
                     "--seeds", "1", "--ops", "8",
                     "--crash-points", "none", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["schema"] == "repro-check/1"
        assert payload["model"] == "<Lin, Event>"
        assert payload["arch"] == "MINOS-O"
        assert payload["ok"] is True

    def test_verify_json_and_offload_flag(self, capsys):
        code = main(["verify", "--model", "synch", "--offload",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["schema"] == "repro-verify/1"
        assert payload["arch"] == "MINOS-O"
        assert payload["ok"] is True
