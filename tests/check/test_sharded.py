"""Cross-shard checking: scope closure, routing, per-shard crashes.

The hand-built histories below construct merged sharded histories
directly (via :func:`merge_histories`, so they carry the real op-id
striding) to pin the cross-shard rules precisely; the end-to-end matrix
at the bottom runs real sharded executions through the same checkers.
"""

import dataclasses

import pytest

from repro.check.history import HistoryOp
from repro.check.sharded import (check_scope_closure,
                                 check_sharded_durability,
                                 check_sharded_history,
                                 check_sharded_linearizability,
                                 keys_spanning_shards, shard_slices)
from repro.core.model import LIN_SCOPE, LIN_SYNCH, model_by_name
from repro.core.timestamp import Timestamp
from repro.shard.merge import merge_histories
from repro.shard.parallel import ShardedRunConfig, run_sharded
from repro.workloads.ycsb import record_key

#: The pre-populated table every YCSB run starts from.
INITIAL = {record_key(i): f"init{i}" for i in range(60)}


def _write(op_id, key, scope=None, invoked=1.0, responded=2.0,
           value="v", ts=None, client="n0c0"):
    return HistoryOp(op_id=op_id, client=client, kind="write", key=key,
                     value=value, invoked=invoked, responded=responded,
                     ts=ts or Timestamp(1, 0), scope=scope)


def _persist(op_id, scope, invoked, responded, client="n0c0"):
    return HistoryOp(op_id=op_id, client=client, kind="persist",
                     key=None, value=None, invoked=invoked,
                     responded=responded, scope=scope)


class TestScopeClosure:
    def test_every_shard_slice_closed_is_ok(self):
        merged = merge_histories([
            [_write(0, "a", scope=1, responded=2.0),
             _persist(1, 1, invoked=3.0, responded=4.0)],
            [_write(0, "b", scope=1, responded=1.0),
             _persist(1, 1, invoked=1.5, responded=2.5)],
        ])
        assert check_scope_closure(merged).ok

    def test_one_uncovered_shard_slice_is_a_violation(self):
        merged = merge_histories([
            [_write(0, "a", scope=1, responded=2.0),
             _persist(1, 1, invoked=3.0, responded=4.0)],
            [_write(0, "b", scope=1, responded=1.0)],  # never persisted
        ])
        report = check_scope_closure(merged)
        assert not report.ok
        assert [v.rule for v in report.violations] == [
            "sharded-scope-closure"]
        assert report.violations[0].key == 1
        assert "shard 1" in report.violations[0].detail

    def test_persist_invoked_before_response_does_not_cover(self):
        # The persist must start at-or-after the write's response on its
        # own shard; an earlier persist may have missed the write.
        merged = merge_histories([
            [_write(0, "a", scope=1, responded=5.0),
             _persist(1, 1, invoked=4.0, responded=6.0)],
        ])
        assert not check_scope_closure(merged).ok

    def test_other_scopes_and_unscoped_writes_ignored(self):
        merged = merge_histories([
            [_write(0, "a", scope=None, responded=2.0),
             _write(1, "b", scope=2, responded=2.0),
             _persist(2, 2, invoked=3.0, responded=4.0)],
        ])
        assert check_scope_closure(merged).ok


class TestRouting:
    def test_spanning_key_detected_and_failed(self):
        merged = merge_histories([
            [_write(0, "dup", responded=2.0)],
            [_write(0, "dup", responded=2.0)],
        ])
        assert keys_spanning_shards(merged) == {"dup": [0, 1]}
        report = check_sharded_linearizability(merged)
        assert not report.ok
        assert report.keys["dup"].states == 0

    def test_disjoint_keys_delegate_to_wgl(self):
        merged = merge_histories([
            [_write(0, "a", responded=2.0)],
            [_write(0, "b", responded=2.0)],
        ])
        assert keys_spanning_shards(merged) == {}
        assert check_sharded_linearizability(merged).ok

    def test_shard_slices_partition_by_stride(self):
        merged = merge_histories([
            [_write(0, "a")], [], [_write(0, "c")],
        ])
        slices = shard_slices(merged)
        assert sorted(slices) == [0, 2]
        assert [op.key for op in slices[0]] == ["a"]
        assert [op.key for op in slices[2]] == ["c"]


class TestShardCrash:
    def test_crash_checks_only_the_crashed_slice(self):
        # Shard 0: a synch-acked write that must survive its crash.
        # Shard 1: the same-shaped write, but shard 1 did not crash, so
        # its (empty) snapshot is never consulted.
        merged = merge_histories([
            [_write(0, "a", responded=2.0, ts=Timestamp(3, 0))],
            [_write(0, "b", responded=2.0, ts=Timestamp(3, 0))],
        ])
        lost = check_sharded_durability(LIN_SYNCH, merged, crash_shard=0,
                                        crash_time=10.0, snapshot={})
        assert not lost.ok
        assert {v.key for v in lost.violations} == {"a"}

        survived = check_sharded_durability(
            LIN_SYNCH, merged, crash_shard=0, crash_time=10.0,
            snapshot={"a": (Timestamp(3, 0), "v")})
        assert survived.ok


class TestEndToEnd:
    """The persist_scope durability matrix over real sharded runs."""

    CONFIG = dict(shards=2, nodes_per_shard=3, records=60,
                  requests_per_client=8, clients_per_node=1,
                  record_history=True, seed=17)

    @pytest.mark.parametrize("model,arch", [
        ("synch", "MINOS-B"),
        ("strict", "MINOS-B"),
        ("scope", "MINOS-O"),
    ])
    def test_fault_free_sharded_runs_check_clean(self, model, arch):
        persist_every = 4 if model == "scope" else None
        result = run_sharded(ShardedRunConfig(
            model=model, arch=arch, persist_every=persist_every,
            **self.CONFIG))
        report = check_sharded_history(model_by_name(model),
                                       result.history, initial=INITIAL)
        assert report.ok, report.to_dict()
        assert report.shards == 2
        if model == "scope":
            assert len(result.history.persists()) > 0

    def test_stripping_persists_breaks_scope_closure(self):
        result = run_sharded(ShardedRunConfig(
            model="scope", arch="MINOS-O", persist_every=4,
            **self.CONFIG))
        gutted = merge_histories([[
            dataclasses.replace(
                op,
                op_id=op.op_id % 1_000_000,
                client=op.client.split(":", 1)[1])
            for op in slice_.ops if op.kind != "persist"]
            for _, slice_ in sorted(shard_slices(result.history).items())])
        report = check_sharded_history(LIN_SCOPE, gutted,
                                       initial=INITIAL)
        assert not report.ok
        assert any(v.rule == "sharded-scope-closure"
                   for v in report.scope_closure.violations)
