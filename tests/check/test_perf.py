"""Checker performance guard (acceptance criterion: 200-op history in
under 10 s).

The WGL search is exponential without memoization; this guard pins the
per-key partitioning + state caching that keep default-sized runs
interactive.  The budget is 10 s on a shared CI runner — a quiet dev
machine does this in well under a second.
"""

import time

from repro import LIN_SYNCH, MinosCluster, MINOS_B
from repro.check import (CheckWorkload, HistoryRecorder, RecordingClient,
                         check_linearizability)


def record_history(nodes=3, clients_per_node=2, ops_per_client=34,
                   keys=6, seed=11):
    """A real cluster run (no faults, no crash) recorded into a
    history of ``nodes * clients_per_node * ops_per_client`` ops."""
    from repro.hw.params import DEFAULT_MACHINE

    workload = CheckWorkload(keys=keys, ops_per_client=ops_per_client,
                             seed=seed)
    cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                           params=DEFAULT_MACHINE.with_nodes(nodes))
    cluster.load_records(workload.initial_records())
    recorder = HistoryRecorder(cluster.sim)
    for node_id in range(nodes):
        engine = cluster.nodes[node_id].engine
        for client_idx in range(clients_per_node):
            client = RecordingClient(cluster, engine,
                                     workload.ops_for(node_id, client_idx),
                                     recorder, client_idx)
            cluster.sim.spawn(client.run(),
                              name=f"perf.client.n{node_id}c{client_idx}")
    cluster.sim.run()
    return recorder.history()


def test_200_op_history_checks_in_under_10s():
    history = record_history()
    assert len(history) >= 200
    assert not history.pending

    start = time.perf_counter()
    report = check_linearizability(history)
    elapsed = time.perf_counter() - start

    assert report.ok, report.to_dict()
    assert elapsed < 10.0, (
        f"checking {len(history)} ops took {elapsed:.2f}s "
        f"({report.states} states) — memoization regression?")
    # The memo must be doing real work: the state count stays within a
    # small multiple of the op count rather than exploding.
    assert report.states < 100 * len(history)
