"""Seeded-mutant gate: the protocol compiler is *live*.

A compiler that ignored its IR and simply re-derived behavior from the
live engines would pass every calendar-identity test vacuously.  These
mutants prove the generated engines really are a function of the graph
(mirroring ``tests/analysis/test_flow_mutants.py`` one layer up):

* corrupting a dispatch-table entry must be rejected loudly
  (:class:`~repro.errors.CompileError` — never a silent fallback), and
* flipping a constant-folded model fact must change the compiled
  engine's behavior, which the calendar-identity harness then catches
  as a divergence from the interpreted reference.

Every mutation is applied to a deep copy of the real graph and asserts
its anchor exists first, so a schema drift fails the test rather than
silently mutating nothing.
"""

import copy

import pytest

from repro.api import LIN_SYNCH, MINOS_B, MinosCluster, YcsbWorkload
from repro.compile import compile_protocol, default_graph
from repro.errors import CompileError, ReproError
from repro.hw.params import DEFAULT_MACHINE


@pytest.fixture(scope="module")
def graph():
    document = default_graph()
    assert document is not None, "no protocol graph available"
    return document


def mutated(graph, apply):
    """Deep-copy *graph* and run *apply* on the copy."""
    scratch = copy.deepcopy(graph)
    apply(scratch)
    return scratch


def run_calendar(engine_mode, protocol_graph=None):
    cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                           params=DEFAULT_MACHINE.with_nodes(3),
                           engine_mode=engine_mode,
                           protocol_graph=protocol_graph)
    if engine_mode == "compiled":
        assert hasattr(type(cluster.nodes[0].engine),
                       "__compiled_dispatch__"), "compiler fell back"
    calendar = []
    sim = cluster.sim

    def observe(event, delay):
        calendar.append((sim._now, delay))

    sim.schedule_observer = observe
    workload = YcsbWorkload(records=8, requests_per_client=4,
                            write_fraction=0.7, seed=5)
    cluster.run_workload(workload, clients_per_node=1)
    return calendar


def compiled_diverges(graph):
    """True when the calendar-identity harness catches the mutant:
    either the compiled run's calendar differs from the interpreted
    reference, or the mis-compiled protocol fails loudly mid-run."""
    reference = run_calendar("interpreted")
    assert len(reference) > 200, "workload too small — vacuous"
    try:
        candidate = run_calendar("compiled", protocol_graph=graph)
    except ReproError:
        return True
    return candidate != reference


def test_clean_graph_is_quiet(graph):
    """Anti-vacuity: the unmutated graph compiles and matches the
    interpreted calendar exactly (else every mutant below would
    'diverge' for free)."""
    assert not compiled_diverges(graph)


def test_corrupted_dispatch_entry_is_rejected(graph):
    """Renaming the graph's INV entry handler must be a loud
    CompileError at build time, not a silent mis-route or fallback."""

    def corrupt(doc):
        handlers = doc["arches"]["baseline"]["channels"]["net"]["handlers"]
        assert "_follower_inv" in handlers["INV"], handlers["INV"]
        handlers["INV"] = [name if name != "_follower_inv"
                           else "_folower_inv" for name in handlers["INV"]]

    bad = mutated(graph, corrupt)
    with pytest.raises(CompileError):
        compile_protocol(LIN_SYNCH, MINOS_B, graph=bad)
    # The cluster build path must not swallow it either.
    with pytest.raises(CompileError):
        MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                     params=DEFAULT_MACHINE.with_nodes(3),
                     protocol_graph=bad)


def test_missing_dispatch_type_is_rejected(graph):
    def corrupt(doc):
        handlers = doc["arches"]["baseline"]["channels"]["net"]["handlers"]
        assert "ACK" in handlers
        del handlers["ACK"]

    with pytest.raises(CompileError):
        compile_protocol(LIN_SYNCH, MINOS_B, graph=mutated(graph, corrupt))


def test_missing_folded_fact_is_rejected(graph):
    """A model entry missing a constant-folded guard's fact must refuse
    to compile — folding from a default would defeat this gate."""

    def corrupt(doc):
        entry = next(m for m in doc["models"] if m["name"] == "LIN_SYNCH")
        assert "persist_in_critical_path" in entry["props"]
        del entry["props"]["persist_in_critical_path"]

    with pytest.raises(CompileError):
        compile_protocol(LIN_SYNCH, MINOS_B, graph=mutated(graph, corrupt))


def test_flipped_persistency_fact_diverges(graph):
    """Flipping ``persist_in_critical_path`` mis-folds the coordinator's
    critical-path guard; the calendar harness must catch it."""

    def corrupt(doc):
        entry = next(m for m in doc["models"] if m["name"] == "LIN_SYNCH")
        assert entry["props"]["persist_in_critical_path"] is True
        entry["props"]["persist_in_critical_path"] = False

    assert compiled_diverges(mutated(graph, corrupt))


def test_flipped_ec_fact_diverges(graph):
    """Flipping ``is_eventual_consistency`` re-routes the graph's INV
    dispatch entry to the ``_ec_*`` handler family — a dispatch-table
    selection mutant, not just a guard mutant."""

    def corrupt(doc):
        entry = next(m for m in doc["models"] if m["name"] == "LIN_SYNCH")
        assert entry["props"]["is_eventual_consistency"] is False
        entry["props"]["is_eventual_consistency"] = True

    assert compiled_diverges(mutated(graph, corrupt))
