"""The protocol compiler is calendar-transparent.

``engine_mode="compiled"`` claims to change only constant factors:
the specialized engine classes must schedule *exactly* the events the
interpreted reference engines schedule, in the same order, at the same
times.  These tests pin that claim with the house technique (PR 2/4/5):
a :attr:`Simulator.schedule_observer` records the full event calendar
of a small-but-real workload in both modes, and the recordings must be
identical — across every Linearizable persistency model, both
architectures (plus an offload ablation without batching, which folds
different constants), with and without an active fault plan.

A divergence here means the compiler changed simulation semantics —
treat failures as release blockers, not flaky tests.
"""

import pytest

from repro.api import (EC_EVENT, EC_SYNCH, LIN_EVENT, LIN_RENF, LIN_SCOPE,
                       LIN_STRICT, LIN_SYNCH, MINOS_B, MINOS_O, FaultPlan,
                       MinosCluster, YcsbWorkload)
from repro.core.config import COMBINED
from repro.hw.params import DEFAULT_MACHINE

LIN_MODELS = [LIN_SYNCH, LIN_STRICT, LIN_RENF, LIN_EVENT, LIN_SCOPE]
EC_MODELS = [EC_SYNCH, EC_EVENT]
ARCHES = [MINOS_B, MINOS_O]


def record_calendar(sim):
    """Record ``(now, delay)`` per push at the single heap-push choke
    point — enough to detect any reordering, retiming, or added/removed
    event, while staying agnostic to which object instance carried it."""
    calendar = []

    def observe(event, delay):
        calendar.append((sim._now, delay))

    sim.schedule_observer = observe
    return calendar


def run_small_workload(model, config, engine_mode, faults=False):
    """One deterministic 3-node YCSB run; returns its observables."""
    cluster = MinosCluster(model=model, config=config,
                          params=DEFAULT_MACHINE.with_nodes(3),
                          engine_mode=engine_mode)
    if engine_mode == "compiled":
        # Anti-vacuity: the factory must not have silently fallen back
        # to the interpreted class, or this whole file tests nothing.
        engine_cls = type(cluster.nodes[0].engine)
        assert hasattr(engine_cls, "__compiled_dispatch__"), \
            f"compiler fell back to interpreted for {model}/{config.name}"
    if faults:
        cluster.enable_faults(FaultPlan.lossy(seed=3, drop=0.05))
    calendar = record_calendar(cluster.sim)
    workload = YcsbWorkload(records=12, requests_per_client=8,
                            write_fraction=0.6, seed=7)
    metrics = cluster.run_workload(workload, clients_per_node=1)
    return {
        "calendar": calendar,
        "events_processed": cluster.sim.events_processed,
        "write_latencies": metrics.write_latency.samples,
        "read_latencies": metrics.read_latency.samples,
    }


def assert_identical(reference, candidate, min_len=1000):
    assert candidate["events_processed"] == reference["events_processed"]
    assert candidate["calendar"] == reference["calendar"]
    assert candidate["write_latencies"] == reference["write_latencies"]
    assert candidate["read_latencies"] == reference["read_latencies"]
    assert len(reference["calendar"]) > min_len, \
        "workload too small — the comparison is vacuous"


@pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
@pytest.mark.parametrize("model", LIN_MODELS, ids=lambda m: m.name)
class TestCompiledCalendarIdentity:
    def test_fault_free(self, model, config):
        interpreted = run_small_workload(model, config, "interpreted")
        compiled = run_small_workload(model, config, "compiled")
        assert_identical(interpreted, compiled)

    def test_under_fault_plan(self, model, config):
        """Loss + retransmit exercises the inlined robustness arming
        (``watch_retransmits``/``stamp``/dedup) that the fault-free run
        never reaches."""
        interpreted = run_small_workload(model, config, "interpreted",
                                         faults=True)
        compiled = run_small_workload(model, config, "compiled",
                                      faults=True)
        assert_identical(interpreted, compiled)


@pytest.mark.parametrize("model", EC_MODELS, ids=lambda m: m.name)
def test_eventual_consistency_models(model):
    """The EC models fold the other way (``is_eventual_consistency``
    selects the ``_ec_*`` INV entry from the graph table)."""
    for config in ARCHES:
        interpreted = run_small_workload(model, config, "interpreted")
        compiled = run_small_workload(model, config, "compiled")
        assert_identical(interpreted, compiled, min_len=500)


def test_offload_without_batching():
    """COMBINED (offload, batching off) folds the opposite constants on
    the PCIe deposit/forward paths (``envelope.is_batched``,
    per-follower ACK forwarding) — the ablation MINOS-O never covers."""
    interpreted = run_small_workload(LIN_SYNCH, COMBINED, "interpreted")
    compiled = run_small_workload(LIN_SYNCH, COMBINED, "compiled")
    assert_identical(interpreted, compiled)


def test_compiled_classes_are_cached():
    """Two clusters on the same triple share one generated class."""
    a = MinosCluster(params=DEFAULT_MACHINE.with_nodes(3))
    b = MinosCluster(params=DEFAULT_MACHINE.with_nodes(3))
    assert type(a.nodes[0].engine) is type(b.nodes[0].engine)
    assert type(a.nodes[0].engine).__compiled_dispatch__.model == "LIN_SYNCH"
