"""Differential conformance of the *compiled* engines.

``tests/core/test_differential.py`` pins MINOS-B ≡ MINOS-O agreement
for the interpreted engines; this file runs the same conflict-free
differential with ``engine_mode="compiled"`` — compiled MINOS-B and
compiled MINOS-O must commit the same writes, agree across replicas,
and advance ``glb_durableTS`` monotonically — and then goes one level
up: :func:`repro.api.run_check` (schedule/crash exploration + WGL
(durable-)linearizability checking) over compiled-engine histories.
"""

import pytest

from repro.api import (LIN_EVENT, LIN_RENF, LIN_SCOPE, LIN_STRICT,
                       LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster, run_check)
from repro.hw.params import MachineParams
from repro.workloads.ycsb import Op, OpKind

LIN_MODELS = [LIN_SYNCH, LIN_STRICT, LIN_RENF, LIN_EVENT, LIN_SCOPE]

NODES = 3
CLIENTS = 2
KEYS_PER_CLIENT = 3
WRITES_PER_CLIENT = 8


class ConflictFreeWorkload:
    """Each (node, client) writes only its own keys, so the final value
    of every key is that client's last write on both architectures."""

    def __init__(self, seed: int, scoped: bool) -> None:
        self.seed = seed
        self.scoped = scoped

    def keys_of(self, node_id: int, client_idx: int):
        return [f"n{node_id}c{client_idx}k{i}"
                for i in range(KEYS_PER_CLIENT)]

    def initial_records(self):
        for node_id in range(NODES):
            for client_idx in range(CLIENTS):
                for key in self.keys_of(node_id, client_idx):
                    yield key, "v0"

    def ops_for(self, node_id: int, client_idx: int):
        keys = self.keys_of(node_id, client_idx)
        scope = node_id * 100 + client_idx if self.scoped else None
        for seq in range(WRITES_PER_CLIENT):
            key = keys[(seq + self.seed) % len(keys)]
            yield Op(OpKind.WRITE, key=key, value=f"v{seq + 1}",
                     scope=scope)
            if seq % 3 == 2:
                yield Op(OpKind.READ, key=key)
        if self.scoped:
            yield Op(OpKind.PERSIST, scope=scope)


def run_once(config, model, seed):
    cluster = MinosCluster(model=model, config=config,
                           params=MachineParams(nodes=NODES),
                           engine_mode="compiled")
    assert hasattr(type(cluster.nodes[0].engine), "__compiled_dispatch__"), \
        f"compiler fell back to interpreted for {model}/{config.name}"
    obs = cluster.attach_obs()
    workload = ConflictFreeWorkload(seed, scoped=(model is LIN_SCOPE))
    cluster.run_workload(workload, clients_per_node=CLIENTS)
    return cluster, obs


def final_state(cluster):
    """{key: (value, ts)} per node, from the volatile image."""
    states = []
    for node in cluster.nodes:
        state = {}
        for key in sorted(node.kv.metadata.keys()):
            record = node.kv.volatile_read(key)
            state[key] = (record.value, record.ts)
        states.append(state)
    return states


@pytest.mark.parametrize("model", LIN_MODELS, ids=lambda m: m.name)
@pytest.mark.parametrize("seed", [1, 2])
class TestCompiledDifferential:
    def test_architectures_agree_on_final_contents(self, model, seed):
        baseline, _ = run_once(MINOS_B, model, seed)
        offload, _ = run_once(MINOS_O, model, seed)
        b_states = final_state(baseline)
        o_states = final_state(offload)
        for states, label in ((b_states, "MINOS-B"), (o_states, "MINOS-O")):
            for node_id, state in enumerate(states):
                assert state == states[0], \
                    f"compiled {label} node {node_id} diverges from node 0"
        b_values = {key: value for key, (value, _) in b_states[0].items()}
        o_values = {key: value for key, (value, _) in o_states[0].items()}
        assert b_values == o_values
        expected_writes = NODES * CLIENTS * WRITES_PER_CLIENT
        assert baseline.metrics.counters.writes_completed == expected_writes
        assert offload.metrics.counters.writes_completed == expected_writes

    def test_glb_durable_ts_is_monotone(self, model, seed):
        for config in (MINOS_B, MINOS_O):
            cluster, obs = run_once(config, model, seed)
            advances = obs.instants_for(name="durable_advance")
            if model.persist_in_critical_path:
                assert advances, \
                    f"{config.name}/{model.name} recorded no durability"
            last = {}
            for instant in advances:
                track = (instant.node, instant.attr("key"))
                ts = instant.attr("ts")
                if track in last:
                    assert ts >= last[track], \
                        f"glb_durableTS went backwards on {track}"
                last[track] = ts
            for node in cluster.nodes:
                for key in node.kv.metadata.keys():
                    record = node.kv.volatile_read(key)
                    assert node.kv.meta(key).glb_durable_ts <= record.ts


@pytest.mark.parametrize("arch", ["MINOS-B", "MINOS-O"])
def test_run_check_linearizability_on_compiled_histories(arch):
    """WGL (durable-)linearizability over histories recorded from
    compiled-engine runs under schedule exploration + one crash."""
    report = run_check(model="synch", config=arch, nodes=3,
                       ops_per_client=10, clients_per_node=1, keys=4,
                       seeds=2, crash_points="phase", crash_trials=1,
                       engine_mode="compiled")
    assert report.ok, report.counterexample
    assert len(report.runs) >= 2
