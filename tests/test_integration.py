"""Cross-module integration tests: whole-cluster scenarios that combine
workloads, failures, scopes, tracing, and both architectures."""

import pytest

from repro import (ALL_MODELS, LIN_SCOPE, LIN_SYNCH, MINOS_B, MINOS_O,
                   MinosCluster, YcsbWorkload)
from repro.core.recovery import RecoveryManager
from repro.hw.params import MachineParams, us
from repro.workloads.ycsb import OpKind

ARCHES = [MINOS_B, MINOS_O]


class TestDeterminism:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_identical_runs_produce_identical_metrics(self, config):
        def run():
            cluster = MinosCluster(model=LIN_SYNCH, config=config,
                                   params=MachineParams(nodes=3))
            workload = YcsbWorkload(records=50, requests_per_client=25,
                                    write_fraction=0.5, seed=13)
            metrics = cluster.run_workload(workload, clients_per_node=2)
            return (metrics.write_latency.samples,
                    metrics.read_latency.samples,
                    cluster.sim.now)

        assert run() == run()


class TestScopeWorkload:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_ycsb_with_periodic_persists(self, config):
        """<Lin, Scope> end-to-end through run_workload: every scope is
        eventually persisted on every replica."""
        cluster = MinosCluster(model=LIN_SCOPE, config=config,
                               params=MachineParams(nodes=3))
        workload = YcsbWorkload(records=40, requests_per_client=20,
                                write_fraction=0.6, seed=21,
                                persist_every=4)
        metrics = cluster.run_workload(workload, clients_per_node=2)
        assert metrics.counters.scope_persist_txns > 0
        assert metrics.persist_latency.count == \
            metrics.counters.scope_persist_txns
        # Quiescent cluster: durable state matches volatile state.
        for node in cluster.nodes:
            for key, versioned in node.kv.table.items():
                if versioned.ts.version > 0:  # touched by the workload
                    assert node.kv.durable_value(key) == versioned.value


class TestRecoveryUnderLoad:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_crash_midload_then_rejoin_converges(self, config):
        cluster = MinosCluster(model=LIN_SYNCH, config=config,
                               params=MachineParams(nodes=3))
        manager = RecoveryManager(cluster, heartbeat_interval=us(20),
                                  timeout=us(100))
        for node in cluster.nodes:
            node.engine.tolerate_stale_acks = True
        cluster.load_records([(f"k{i}", "v0") for i in range(10)])
        sim = cluster.sim

        def survivor_load(node_id):
            for i in range(12):
                yield from cluster.nodes[node_id].engine.client_write(
                    f"k{i % 10}", f"n{node_id}-i{i}")

        manager.crash(2)
        drivers = [sim.spawn(survivor_load(n)) for n in (0, 1)]
        sim.run(until=sim.now + us(3000))
        assert all(d.triggered for d in drivers)
        process = manager.recover(2)
        sim.run(until=sim.now + us(3000))
        assert process.triggered
        # The rejoined node converged to the survivors' state.
        for i in range(10):
            reference = cluster.nodes[0].kv.volatile_read(f"k{i}")
            recovered = cluster.nodes[2].kv.volatile_read(f"k{i}")
            assert recovered.ts == reference.ts, f"k{i}"
            assert recovered.value == reference.value


class TestMessageAccounting:
    def test_offload_puts_fewer_messages_on_the_wire(self):
        """MINOS-O's broadcast fans out in hardware: per write it
        serializes 2 network messages at the coordinator (INV + VAL
        broadcasts) instead of MINOS-B's 2x(n-1)."""
        results = {}
        for config in ARCHES:
            cluster = MinosCluster(model=LIN_SYNCH, config=config)
            cluster.load_records([("k", "v0")])
            cluster.write(0, "k", "v1")
            cluster.sim.run()
            node0 = cluster.nodes[0]
            sent = (node0.snic or node0.nic).messages_sent
            results[config.name] = sent
        assert results["MINOS-B"] == 8   # 4 INVs + 4 VALs
        assert results["MINOS-O"] == 2   # 1 INV bcast + 1 VAL bcast

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_ack_counts_match_protocol(self, config, model):
        """Every model sends exactly the ACK traffic Figures 2-3/7
        prescribe for one uncontended write on 3 nodes (2 followers)."""
        cluster = MinosCluster(model=model, config=config,
                               params=MachineParams(nodes=3))
        cluster.load_records([("k", "v0")])
        cluster.write(0, "k", "v1")
        cluster.sim.run()
        acks = cluster.metrics.counters.acks_sent
        if model.split_acks:       # Strict, REnf: ACK_C + ACK_P each
            assert acks == 4
        else:                      # Synch: ACK; Event/Scope: ACK_C
            assert acks == 2


class TestMixedTraffic:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_hot_key_storm_with_readers(self, config):
        """Many writers on one hot key plus readers on all nodes: no
        deadlock, all ops finish, replicas converge."""
        cluster = MinosCluster(model=LIN_SYNCH, config=config,
                               params=MachineParams(nodes=4))
        cluster.load_records([("hot", "v0")])
        sim = cluster.sim
        procs = []
        for node in range(4):
            for i in range(3):
                procs.append(sim.spawn(
                    cluster.nodes[node].engine.client_write(
                        "hot", f"n{node}w{i}")))
            procs.append(sim.spawn(
                cluster.nodes[node].engine.client_read("hot")))
        sim.run()
        assert all(p.triggered for p in procs)
        reference = cluster.nodes[0].kv.volatile_read("hot")
        for node in cluster.nodes:
            assert node.kv.volatile_read("hot").ts == reference.ts
