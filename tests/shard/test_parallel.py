"""The executor's correctness contract: serial ≡ parallel, exactly."""

import pytest

from repro.check.history import SHARD_OP_STRIDE, split_shard
from repro.errors import ConfigError
from repro.shard.parallel import (ShardedRunConfig, run_shard,
                                  run_sharded)

#: Small enough to keep each worker under a second, big enough that a
#: nondeterministic executor would have thousands of chances to diverge.
SMALL = dict(shards=2, nodes_per_shard=3, records=60,
             requests_per_client=8, clients_per_node=1,
             record_history=True)


class TestSerialEqualsParallel:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_identical_fingerprints_across_seeds(self, seed):
        config = ShardedRunConfig(seed=seed, **SMALL)
        serial = run_sharded(config, workers=1)
        parallel = run_sharded(config, workers=2)
        assert serial.fingerprint() == parallel.fingerprint()

    def test_scope_model_with_traces_also_identical(self):
        config = ShardedRunConfig(model="scope", arch="MINOS-O",
                                  persist_every=4, seed=5,
                                  record_trace=True, **SMALL)
        serial = run_sharded(config, workers=1)
        parallel = run_sharded(config, workers=2)
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.trace is not None
        assert serial.trace["traceEvents"] == parallel.trace["traceEvents"]

    def test_rerun_is_reproducible(self):
        config = ShardedRunConfig(seed=13, **SMALL)
        assert (run_sharded(config, workers=1).fingerprint()
                == run_sharded(config, workers=1).fingerprint())

    def test_different_seeds_differ(self):
        a = run_sharded(ShardedRunConfig(seed=1, **SMALL), workers=1)
        b = run_sharded(ShardedRunConfig(seed=2, **SMALL), workers=1)
        assert a.fingerprint() != b.fingerprint()


class TestMergedShape:
    def test_history_namespacing(self):
        result = run_sharded(ShardedRunConfig(seed=3, **SMALL), workers=1)
        shards_seen = {split_shard(op.op_id) for op in result.history}
        assert shards_seen == {0, 1}
        for op in result.history:
            assert op.client.startswith(f"s{split_shard(op.op_id)}:")
            assert op.op_id % SHARD_OP_STRIDE < SHARD_OP_STRIDE

    def test_each_shard_issues_the_full_request_stream(self):
        config = ShardedRunConfig(seed=3, **SMALL)
        result = run_sharded(config, workers=1)
        per_shard = config.nodes_per_shard * config.clients_per_node \
            * config.requests_per_client
        assert len(result.history) == config.shards * per_shard
        assert len(result.per_shard_events) == config.shards
        assert result.events_processed == sum(result.per_shard_events)

    def test_single_worker_shard_matches_pool_member(self):
        config = ShardedRunConfig(seed=9, **SMALL)
        alone = run_shard(config, shard=1)
        merged = run_sharded(config, workers=2)
        assert merged.per_shard_events[1] == alone.events_processed


class TestValidation:
    def test_bad_model_name_fails_eagerly(self):
        with pytest.raises(Exception):
            ShardedRunConfig(model="nonesuch")

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ConfigError):
            ShardedRunConfig(shards=0)

    def test_out_of_range_shard_rejected(self):
        config = ShardedRunConfig(**SMALL)
        with pytest.raises(ConfigError):
            run_shard(config, shard=config.shards)

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigError):
            run_sharded(ShardedRunConfig(**SMALL), workers=-1)
