"""Hash ring: determinism, full coverage, balance."""

import pytest

from repro.errors import ConfigError
from repro.shard.hashing import HashRing, fnv1a64, stable_key_hash
from repro.workloads.ycsb import record_key


class TestStableHash:
    def test_fnv1a64_known_vectors(self):
        # FNV-1a 64 test vectors (offset basis for "", avalanched input).
        assert fnv1a64(b"") == 0xCBF29CE484222325
        assert fnv1a64(b"a") == 0xAF63DC4C8601EC8C

    def test_stable_across_calls_and_instances(self):
        # No builtin hash(): the mapping is a pure function of the key
        # string, identical in every process regardless of
        # PYTHONHASHSEED (the house determinism invariant).
        assert stable_key_hash("user42") == stable_key_hash("user42")
        a = HashRing(4)
        b = HashRing(4)
        for i in range(200):
            key = record_key(i)
            assert a.shard_of(key) == b.shard_of(key)

    def test_distinct_keys_spread(self):
        hashes = {stable_key_hash(record_key(i)) for i in range(1000)}
        assert len(hashes) == 1000


class TestRing:
    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert all(ring.shard_of(record_key(i)) == 0 for i in range(100))

    def test_every_key_owned_by_exactly_one_shard(self):
        ring = HashRing(5)
        keys = [record_key(i) for i in range(500)]
        owners = {key: ring.shard_of(key) for key in keys}
        assert set(owners.values()) <= set(range(5))
        buckets = ring.owned(keys)
        assert len(buckets) == 5
        for shard, bucket in enumerate(buckets):
            assert set(bucket) == {k for k, s in owners.items()
                                   if s == shard}

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_balance_over_ycsb_keyspace(self, shards):
        ring = HashRing(shards)
        counts = [0] * shards
        for i in range(10_000):
            counts[ring.shard_of(record_key(i))] += 1
        assert min(counts) > 0
        # Consistent hashing with 64 vnodes/shard is not perfectly
        # uniform, but no shard may be starved or doubly loaded.
        assert max(counts) / min(counts) < 2.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            HashRing(0)
        with pytest.raises(ConfigError):
            HashRing(2, vnodes=0)
