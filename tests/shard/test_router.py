"""ShardRouter: the MinosCluster client contract over N groups."""

import pytest

from repro.cluster.cluster import MinosCluster
from repro.cluster.results import OpResult
from repro.core.model import LIN_SCOPE, LIN_SYNCH
from repro.errors import ConfigError
from repro.hw.params import DEFAULT_MACHINE
from repro.shard.router import ShardRouter
from repro.workloads.ycsb import YcsbWorkload, record_key

SMALL = DEFAULT_MACHINE.with_nodes(3)


@pytest.fixture
def router():
    return ShardRouter(shards=3, model=LIN_SYNCH, params=SMALL, seed=7)


class TestDirectOps:
    def test_write_then_read_roundtrips(self, router):
        for i in range(12):
            key = record_key(i)
            wrote = router.write(0, key, f"v{i}")
            assert isinstance(wrote, OpResult)
            assert wrote.op == "write" and wrote.latency > 0
            got = router.read(1, key)
            assert got.op == "read"
            assert got.value == f"v{i}"

    def test_ops_land_on_the_owning_shard(self, router):
        key = record_key(3)
        shard = router.shard_of(key)
        before = [c.metrics.counters.writes_completed
                  for c in router.clusters]
        router.write(0, key, "x")
        after = [c.metrics.counters.writes_completed
                 for c in router.clusters]
        assert after[shard] == before[shard] + 1
        for other in range(router.shards):
            if other != shard:
                assert after[other] == before[other]
        assert router.cluster_for(key) is router.clusters[shard]

    def test_load_records_partitions_the_table(self, router):
        records = [(record_key(i), f"init{i}") for i in range(30)]
        assert router.load_records(records) == 30
        for key, value in records:
            assert router.read(0, key).value == value


class TestPersistScope:
    def test_persist_fans_out_to_tracked_shards_only(self):
        router = ShardRouter(shards=3, model=LIN_SCOPE, params=SMALL,
                             seed=7)
        # Route scope-9 writes until two distinct shards hold them.
        touched = set()
        i = 0
        while len(touched) < 2:
            key = record_key(i)
            router.write(0, key, "v", scope=9)
            touched.add(router.shard_of(key))
            i += 1
        result = router.persist_scope(0, 9)
        assert result.op == "persist" and result.key == 9
        assert result.latency > 0
        txns = [c.metrics.counters.scope_persist_txns
                for c in router.clusters]
        for shard in range(router.shards):
            assert txns[shard] == (1 if shard in touched else 0)

    def test_unknown_scope_persists_everywhere(self):
        router = ShardRouter(shards=2, model=LIN_SCOPE, params=SMALL,
                             seed=7)
        router.persist_scope(0, 1234)
        assert all(c.metrics.counters.scope_persist_txns == 1
                   for c in router.clusters)


class TestRunWorkload:
    def test_partitioned_run_conserves_ops(self):
        workload = YcsbWorkload(records=60, requests_per_client=10,
                                write_fraction=0.5, seed=11)
        single = MinosCluster(model=LIN_SYNCH, params=SMALL, seed=0)
        baseline = single.run_workload(workload, clients_per_node=2)
        base_ops = (baseline.counters.writes_completed
                    + baseline.counters.reads_completed)

        router = ShardRouter(shards=3, model=LIN_SYNCH, params=SMALL,
                             seed=0)
        merged = router.run_workload(workload, clients_per_node=2)
        # The sharded deployment partitions the same op stream: every
        # read/write lands on exactly one shard, none twice, none lost.
        assert (merged.counters.writes_completed
                + merged.counters.reads_completed) == base_ops

    def test_merged_metrics_shape(self, router):
        workload = YcsbWorkload(records=30, requests_per_client=5,
                                seed=3)
        merged = router.run_workload(workload, clients_per_node=1)
        assert merged.started_at is not None
        assert merged.duration > 0
        for shard, _ in merged.comm_spans:
            assert 0 <= shard < router.shards

    def test_rejects_bad_client_count(self, router):
        with pytest.raises(ConfigError):
            router.run_workload(YcsbWorkload(records=10), clients_per_node=0)


def test_repr_names_the_deployment(router):
    assert "shards=3" in repr(router)
