"""Deterministic merge of per-shard metrics, histories, and traces."""

import pytest

from repro.check.history import SHARD_OP_STRIDE, HistoryOp, split_shard
from repro.errors import ConfigError
from repro.metrics.stats import Metrics
from repro.shard.merge import (FABRIC_SLOT, SHARD_PID_STRIDE,
                               merge_histories, merge_metrics,
                               merge_traces, shard_pid)


def _metrics(write_samples, started_at=0.0, finished_at=1.0,
             writes=0, spans=()):
    m = Metrics()
    for s in write_samples:
        m.write_latency.add(s)
    m.counters.writes_completed = writes
    m.started_at = started_at
    m.finished_at = finished_at
    for write_id, span in spans:
        m.comm_spans[write_id] = span
    return m


def _op(op_id, client="n0c0", kind="write", key="k", invoked=1.0,
        responded=2.0):
    return HistoryOp(op_id=op_id, client=client, kind=kind, key=key,
                     value="v", invoked=invoked, responded=responded)


class TestMergeMetrics:
    def test_counters_sum_and_samples_concatenate_in_shard_order(self):
        merged = merge_metrics([
            _metrics([1.0, 2.0], writes=2),
            _metrics([3.0], writes=1),
        ])
        assert merged.counters.writes_completed == 3
        assert merged.write_latency.samples == [1.0, 2.0, 3.0]

    def test_write_id_maps_rekeyed_per_shard(self):
        merged = merge_metrics([
            _metrics([], spans=[(1, "spanA")]),
            _metrics([], spans=[(1, "spanB")]),
        ])
        # Same-numbered writes on different shards must not collide.
        assert merged.comm_spans == {(0, 1): "spanA", (1, 1): "spanB"}

    def test_duration_is_slowest_shard_not_sum(self):
        merged = merge_metrics([
            _metrics([], started_at=0.0, finished_at=4.0),
            _metrics([], started_at=1.0, finished_at=2.0),
        ])
        assert merged.started_at == 0.0
        assert merged.duration == 4.0

    def test_empty_merge_rejected(self):
        with pytest.raises(ConfigError):
            merge_metrics([])


class TestMergeHistories:
    def test_op_ids_strided_and_clients_prefixed(self):
        merged = merge_histories([
            [_op(0), _op(1)],
            [_op(0, client="n3c1")],
        ])
        ids = [op.op_id for op in merged]
        assert ids == [0, 1, SHARD_OP_STRIDE]
        assert [split_shard(i) for i in ids] == [0, 0, 1]
        assert [op.client for op in merged] == [
            "s0:n0c0", "s0:n0c0", "s1:n3c1"]

    def test_originals_not_mutated(self):
        ops = [_op(0)]
        merge_histories([[], ops])
        assert ops[0].op_id == 0 and ops[0].client == "n0c0"

    def test_shard_namespace_overflow_rejected(self):
        with pytest.raises(ConfigError):
            merge_histories([[_op(0)] * SHARD_OP_STRIDE])


class TestMergeTraces:
    def _payload(self, pid, name="node0"):
        return {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": pid,
             "args": {"name": name}},
            {"ph": "X", "name": "op", "pid": pid, "tid": 1,
             "ts": 0, "dur": 5},
        ]}

    def test_pids_namespaced_and_process_names_prefixed(self):
        merged = merge_traces([self._payload(0), self._payload(0)])
        events = merged["traceEvents"]
        assert [e["pid"] for e in events] == [
            0, 0, SHARD_PID_STRIDE, SHARD_PID_STRIDE]
        names = [e["args"]["name"] for e in events
                 if e.get("name") == "process_name"]
        assert names == ["shard0/node0", "shard1/node0"]

    def test_fabric_pseudo_node_maps_to_reserved_slot(self):
        assert shard_pid(0, -1) == FABRIC_SLOT
        assert shard_pid(2, -1) == 2 * SHARD_PID_STRIDE + FABRIC_SLOT
        with pytest.raises(ConfigError):
            shard_pid(0, SHARD_PID_STRIDE)

    def test_traceless_shards_skipped(self):
        merged = merge_traces([None, self._payload(1)])
        assert [e["pid"] for e in merged["traceEvents"]] == [
            SHARD_PID_STRIDE + 1, SHARD_PID_STRIDE + 1]
