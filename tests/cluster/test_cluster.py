"""Tests for cluster assembly and workload execution."""

import pytest

from repro import (LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster, YcsbWorkload)
from repro.errors import ConfigError
from repro.hw.params import MachineParams


class TestAssembly:
    def test_baseline_nodes_have_nics(self):
        c = MinosCluster(config=MINOS_B)
        assert len(c.nodes) == 5
        for node in c.nodes:
            assert node.nic is not None and node.snic is None

    def test_offload_nodes_have_smartnics(self):
        c = MinosCluster(config=MINOS_O)
        for node in c.nodes:
            assert node.snic is not None and node.nic is None
            assert node.snic.batching and node.snic.broadcast

    def test_custom_node_count(self):
        c = MinosCluster(params=MachineParams(nodes=8))
        assert len(c.nodes) == 8

    def test_load_records_replicates(self):
        c = MinosCluster()
        count = c.load_records([("a", 1), ("b", 2)])
        assert count == 2
        for node in c.nodes:
            assert node.kv.volatile_read("a").value == 1


class TestWorkloadExecution:
    @pytest.mark.parametrize("config", [MINOS_B, MINOS_O],
                             ids=lambda c: c.name)
    def test_all_requests_complete(self, config):
        c = MinosCluster(model=LIN_SYNCH, config=config,
                         params=MachineParams(nodes=3))
        wl = YcsbWorkload(records=50, requests_per_client=20,
                          write_fraction=0.5, seed=3)
        metrics = c.run_workload(wl, clients_per_node=2)
        total = (metrics.counters.writes_completed +
                 metrics.counters.writes_obsolete +
                 metrics.counters.reads_completed)
        assert total == 3 * 2 * 20
        assert metrics.duration > 0
        assert metrics.write_throughput() > 0

    def test_clients_validated(self):
        c = MinosCluster()
        with pytest.raises(ConfigError):
            c.run_workload(YcsbWorkload(records=5), clients_per_node=0)

    def test_subset_of_nodes(self):
        c = MinosCluster(params=MachineParams(nodes=4))
        wl = YcsbWorkload(records=20, requests_per_client=10,
                          write_fraction=0.0)
        metrics = c.run_workload(wl, clients_per_node=1, nodes=[0, 1])
        assert metrics.counters.reads_completed == 2 * 10


class TestCrashApi:
    def test_crash_and_restore_flags(self):
        c = MinosCluster(params=MachineParams(nodes=2))
        c.crash(1)
        assert c.nodes[1].engine.crashed
        c.restore(1)
        assert not c.nodes[1].engine.crashed
