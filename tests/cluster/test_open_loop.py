"""Tests for open-loop (Poisson-arrival) load generation."""

import pytest

from repro import LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster, YcsbWorkload
from repro.cluster.client import OpenLoopClient
from repro.errors import ConfigError
from repro.hw.params import MachineParams


def small_workload(**kwargs):
    defaults = dict(records=50, requests_per_client=30, write_fraction=0.5,
                    seed=9)
    defaults.update(kwargs)
    return YcsbWorkload(**defaults)


class TestOpenLoopClient:
    def test_rate_validated(self):
        cluster = MinosCluster(params=MachineParams(nodes=2))
        with pytest.raises(ConfigError):
            OpenLoopClient(cluster, cluster.nodes[0].engine, iter(()),
                           rate_ops_per_sec=0)

    def test_all_issued_ops_complete(self):
        cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                               params=MachineParams(nodes=3))
        metrics = cluster.run_open_loop(small_workload(),
                                        rate_per_client=100_000,
                                        clients_per_node=2)
        total = (metrics.counters.writes_completed +
                 metrics.counters.writes_obsolete +
                 metrics.counters.reads_completed)
        assert total == 3 * 2 * 30

    def test_overload_inflates_latency(self):
        """Past saturation, open-loop latency includes queueing delay —
        the behaviour closed-loop clients cannot exhibit."""
        def mean_wlat(rate):
            cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                                   params=MachineParams(nodes=3))
            metrics = cluster.run_open_loop(
                small_workload(write_fraction=1.0),
                rate_per_client=rate, clients_per_node=2)
            return metrics.write_latency.summary().mean

        assert mean_wlat(600_000) > mean_wlat(20_000) * 1.3

    def test_low_rate_matches_unloaded_latency(self):
        """At negligible offered load, each op runs in isolation."""
        cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                               params=MachineParams(nodes=3))
        metrics = cluster.run_open_loop(small_workload(),
                                        rate_per_client=1_000,
                                        clients_per_node=1)
        unloaded = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                                params=MachineParams(nodes=3))
        unloaded.load_records([("user0", "v")])
        single = unloaded.write(0, "user0", "x")
        assert metrics.write_latency.summary().mean == pytest.approx(
            single.latency, rel=0.35)

    def test_offload_sustains_higher_offered_load(self):
        """At an offered load past MINOS-B's knee, O's latency is far
        lower (the Fig. 9 throughput story, open-loop edition)."""
        def mean_wlat(config):
            cluster = MinosCluster(model=LIN_SYNCH, config=config,
                                   params=MachineParams(nodes=3))
            metrics = cluster.run_open_loop(
                small_workload(write_fraction=1.0),
                rate_per_client=300_000, clients_per_node=2)
            return metrics.write_latency.summary().mean

        assert mean_wlat(MINOS_O) < mean_wlat(MINOS_B) * 0.7
