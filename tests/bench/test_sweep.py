"""Tests for the parameter-sweep API."""

import pytest

from repro.bench.harness import ExperimentConfig
from repro.bench.sweep import Sweep, parse_axis
from repro.core.config import MINOS_B, MINOS_O
from repro.errors import ConfigError
from repro.hw.params import ns


def small_base():
    return ExperimentConfig(records=30, requests_per_client=10,
                            clients_per_node=1, nodes=3)


class TestConstruction:
    def test_points_are_cartesian_product(self):
        sweep = Sweep(small_base(), axes={"nodes": [2, 4],
                                          "write_fraction": [0.2, 0.8]})
        points = sweep.points()
        assert len(points) == 4
        assert {"nodes": 2, "write_fraction": 0.8} in points

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep axis"):
            Sweep(small_base(), axes={"warp_factor": [9]})

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigError):
            Sweep(small_base(), axes={})
        with pytest.raises(ConfigError):
            Sweep(small_base(), axes={"nodes": []})

    def test_machine_axes_rewrite_machine(self):
        sweep = Sweep(small_base(), axes={"persist_latency": [ns(100)],
                                          "fifo_entries": [None]})
        config = sweep.config_for(sweep.points()[0])
        assert config.machine.host.nvm_persist_per_kb == pytest.approx(
            ns(100))
        assert config.machine.snic.vfifo_entries is None

    def test_string_values_coerced(self):
        sweep = Sweep(small_base(), axes={"config": ["MINOS-O"],
                                          "model": ["strict"]})
        config = sweep.config_for(sweep.points()[0])
        assert config.config is MINOS_O
        assert config.model.name == "<Lin, Strict>"


class TestRun:
    def test_rows_carry_axis_values_and_metrics(self):
        sweep = Sweep(small_base(), axes={"config": [MINOS_B, MINOS_O]})
        rows = sweep.run()
        assert [r["config"] for r in rows] == ["MINOS-B", "MINOS-O"]
        for row in rows:
            assert row["wlat_us"] > 0 and row["wtput_kops"] > 0

    def test_none_rendered_as_unlimited(self):
        sweep = Sweep(small_base(),
                      axes={"fifo_entries": [None],
                            "config": [MINOS_O]})
        rows = sweep.run()
        assert rows[0]["fifo_entries"] == "unlimited"


class TestParseAxis:
    def test_numeric_coercion(self):
        assert parse_axis("nodes=2,4,8") == ("nodes", [2, 4, 8])
        assert parse_axis("write_fraction=0.2,0.8") == \
            ("write_fraction", [0.2, 0.8])

    def test_strings_and_unlimited(self):
        name, values = parse_axis("config=MINOS-B,MINOS-O")
        assert values == ["MINOS-B", "MINOS-O"]
        assert parse_axis("fifo_entries=unlimited")[1] == [None]

    def test_errors(self):
        with pytest.raises(ConfigError):
            parse_axis("no-equals-sign")
        with pytest.raises(ConfigError):
            parse_axis("nodes=")
