"""Tests for the experiment harness."""

import pytest

from repro import LIN_SYNCH, MINOS_B, MINOS_O, SOCIAL_LOGIN
from repro.bench.harness import (ExperimentConfig, format_table,
                                 run_experiment, run_microservice)


class TestRunExperiment:
    def test_produces_complete_result(self):
        cfg = ExperimentConfig(records=30, requests_per_client=10,
                               clients_per_node=1, nodes=3)
        result = run_experiment(cfg)
        assert result.write_latency.count > 0
        assert result.read_latency.count > 0
        assert result.write_throughput > 0
        assert 0 <= result.breakdown.communication_fraction <= 1
        row = result.row()
        assert row["arch"] == "MINOS-B"
        assert row["nodes"] == 3

    def test_label(self):
        cfg = ExperimentConfig(config=MINOS_O, write_fraction=0.8)
        assert cfg.label() == "MINOS-O/<Lin, Synch>/n5/w80"

    def test_offload_beats_baseline_on_defaults(self):
        base = dict(records=50, requests_per_client=15, clients_per_node=2,
                    nodes=3)
        rb = run_experiment(ExperimentConfig(config=MINOS_B, **base))
        ro = run_experiment(ExperimentConfig(config=MINOS_O, **base))
        assert ro.write_latency.mean < rb.write_latency.mean


class TestMicroservice:
    def test_end_to_end_latency_includes_rtt(self):
        summary = run_microservice(SOCIAL_LOGIN, LIN_SYNCH, MINOS_B,
                                   nodes=3, invocations_per_node=2)
        assert summary.count == 3 * 2
        assert summary.mean > 500e-6  # at least the client RTT


class TestFormatTable:
    def test_alignment_and_content(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bee", "value": 20.25}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "20.25" in text
        assert len(lines) == 4

    def test_empty(self):
        assert format_table([]) == "(no rows)"


class TestHostUtilization:
    def test_offload_relieves_host_cpu(self):
        """The headline systems claim: offloading frees host cores."""
        base = dict(records=60, requests_per_client=25, clients_per_node=3,
                    nodes=3, write_fraction=1.0)
        rb = run_experiment(ExperimentConfig(config=MINOS_B, **base))
        ro = run_experiment(ExperimentConfig(config=MINOS_O, **base))
        assert 0 < ro.host_utilization < rb.host_utilization <= 1
