"""Calibration cross-check: analytic model vs simulated latency (§VII).

The paper validates that MINOS-B behaves the same on the real machine and
the simulator; we validate that our simulator agrees with a closed-form
model of the same critical path.  A drift beyond tolerance means someone
changed the engines or the hardware model without updating the other.
"""

import pytest

from repro import LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster
from repro.bench.analytic import baseline_synch_write, offload_synch_write
from repro.hw.params import DEFAULT_MACHINE, MachineParams


def simulated_write_latency(config, nodes=5):
    cluster = MinosCluster(model=LIN_SYNCH, config=config,
                           params=MachineParams(nodes=nodes))
    cluster.load_records([("k", "v0")])
    return cluster.write(0, "k", "v1").latency


class TestCalibration:
    def test_baseline_matches_analytic(self):
        predicted = baseline_synch_write(DEFAULT_MACHINE).total
        simulated = simulated_write_latency(MINOS_B)
        assert simulated == pytest.approx(predicted, rel=0.20)

    def test_offload_matches_analytic(self):
        predicted = offload_synch_write(DEFAULT_MACHINE).total
        simulated = simulated_write_latency(MINOS_O)
        assert simulated == pytest.approx(predicted, rel=0.20)

    @pytest.mark.parametrize("nodes", [2, 4, 8])
    def test_baseline_scaling_matches_analytic(self, nodes):
        machine = MachineParams(nodes=nodes)
        predicted = baseline_synch_write(machine).total
        simulated = simulated_write_latency(MINOS_B, nodes=nodes)
        assert simulated == pytest.approx(predicted, rel=0.25)

    def test_analytic_predicts_offload_advantage(self):
        b = baseline_synch_write(DEFAULT_MACHINE).total
        o = offload_synch_write(DEFAULT_MACHINE).total
        assert o < b

    def test_estimate_exposes_terms(self):
        estimate = baseline_synch_write(DEFAULT_MACHINE)
        names = [name for name, _v in estimate.terms]
        assert names == ["prologue", "inv_fanout", "follower",
                         "ack_return", "epilogue"]
        assert estimate.total == pytest.approx(
            sum(v for _n, v in estimate.terms))
        assert "us" in str(estimate)
