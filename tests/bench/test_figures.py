"""Smoke tests of the per-figure experiment definitions.

The real assertions about figure *shapes* live in benchmarks/ (run with
--benchmark-only); here we verify the experiment plumbing at smoke scale:
row structure, normalization conventions, and knob coverage.
"""

import pytest

from repro.bench.figures import SCALES, fig4, fig12, fig13, tab1


class TestScales:
    def test_presets(self):
        assert set(SCALES) == {"smoke", "default", "full"}
        assert SCALES["full"][0] == 100_000  # the paper's database size


class TestFig4:
    def test_rows_cover_all_models(self):
        rows = fig4("smoke")
        assert [r["model"] for r in rows] == [
            "<Lin, Synch>", "<Lin, Strict>", "<Lin, REnf>",
            "<Lin, Event>", "<Lin, Scope>"]
        for row in rows:
            assert row["comm_us"] + row["comp_us"] == \
                pytest.approx(row["total_us"], rel=1e-6)


class TestFig12:
    def test_normalized_to_baseline(self):
        rows = fig12("smoke")
        assert rows[0]["arch"] == "MINOS-B"
        assert rows[0]["normalized"] == pytest.approx(1.0)
        assert len(rows) == 7


class TestFig13:
    def test_covers_paper_sizes(self):
        rows = fig13("smoke", sizes=(1, 5, None))
        labels = [r["fifo_entries"] for r in rows]
        assert labels == [1, 5, "unlimited"]
        unlimited = rows[-1]
        assert unlimited["normalized"] == pytest.approx(1.0)


class TestTab1:
    def test_all_models_pass(self):
        rows = tab1(nodes=2)
        assert len(rows) == 10
        assert all(r["result"] == "PASS" for r in rows)
