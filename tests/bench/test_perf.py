"""Tests for the performance benchmark harness (:mod:`repro.bench.perf`).

Runs the micro benchmarks at tiny sizes (the point is the plumbing, not
the numbers), pins the BENCH_*.json payload shape, and exercises the
``check_against`` regression gate both ways — including against the
committed CI baseline in ``benchmarks/bench_baseline.json``.
"""

import json
from pathlib import Path

import pytest

from repro.bench import perf

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED_BASELINE = REPO_ROOT / "benchmarks" / "bench_baseline.json"


def tiny_payload(events_per_sec=1000.0, messages_per_sec=500.0):
    return {
        "schema": perf.SCHEMA,
        "python": "3.x",
        "benchmarks": {
            "micro_events": {"wall_s": 1.0, "events": 1000,
                             "events_per_sec": events_per_sec,
                             "repeats": 1},
            "micro_messages": {"wall_s": 1.0, "events": 1000,
                               "events_per_sec": events_per_sec,
                               "messages": 500.0,
                               "messages_per_sec": messages_per_sec,
                               "repeats": 1},
        },
    }


class TestMicroBenchmarks:
    def test_micro_events_counts_every_hop(self):
        result = perf.bench_micro_events(chains=2, hops=40, repeats=1)
        assert result.name == "micro_events"
        # 2 chains x 40 timeouts, plus per-process bootstrap/finish
        # events — the exact overhead is a kernel detail, the hops are
        # the contract.
        assert result.events >= 80
        assert result.wall_s > 0
        assert result.events_per_sec == pytest.approx(
            result.events / result.wall_s)

    def test_micro_messages_reports_message_rate(self):
        result = perf.bench_micro_messages(messages=50, repeats=1)
        assert result.name == "micro_messages"
        assert result.extra["messages"] == 50.0
        assert result.extra["messages_per_sec"] == pytest.approx(
            50 / result.wall_s)
        assert result.events > 50

    def test_to_dict_flattens_extras(self):
        result = perf.bench_micro_messages(messages=20, repeats=1)
        payload = result.to_dict()
        assert set(payload) == {"wall_s", "events", "events_per_sec",
                                "repeats", "messages", "messages_per_sec"}


class TestRunBench:
    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark group"):
            perf.run_bench(only="nope")

    def test_groups_cover_all_benchmarks(self):
        assert set(perf.GROUPS["all"]) == \
            set(perf.GROUPS["micro"]) | set(perf.GROUPS["macro"])

    def test_payload_shape(self, monkeypatch):
        # Patch in tiny benchmark sizes so this stays a unit test.
        monkeypatch.setitem(
            perf._BENCHMARKS, "micro_events",
            lambda repeats: perf.bench_micro_events(
                chains=2, hops=20, repeats=repeats))
        monkeypatch.setitem(
            perf._BENCHMARKS, "micro_messages",
            lambda repeats: perf.bench_micro_messages(
                messages=20, repeats=repeats))
        payload = perf.run_bench(only="micro", repeats=1)
        assert payload["schema"] == perf.SCHEMA
        assert set(payload["benchmarks"]) == {"micro_events",
                                              "micro_messages"}
        for result in payload["benchmarks"].values():
            assert result["events_per_sec"] > 0


class TestCheckAgainst:
    def test_passes_when_rates_hold(self):
        payload = tiny_payload()
        assert perf.check_against(payload, tiny_payload(),
                                  tolerance=2.0) == []

    def test_passes_within_tolerance(self):
        # 2x slower than baseline is exactly the 2.0 floor — still ok.
        slower = tiny_payload(events_per_sec=500.0, messages_per_sec=250.0)
        assert perf.check_against(slower, tiny_payload(),
                                  tolerance=2.0) == []

    def test_fails_past_tolerance(self):
        slower = tiny_payload(events_per_sec=400.0, messages_per_sec=100.0)
        failures = perf.check_against(slower, tiny_payload(),
                                      tolerance=2.0)
        assert len(failures) == 3  # both events rates + the message rate
        assert any("micro_events.events_per_sec" in f for f in failures)
        assert any("micro_messages.messages_per_sec" in f
                   for f in failures)

    def test_benchmarks_missing_from_either_side_are_skipped(self):
        payload = tiny_payload()
        del payload["benchmarks"]["micro_messages"]
        assert perf.check_against(payload, tiny_payload(),
                                  tolerance=2.0) == []

    def test_rejects_nonpositive_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            perf.check_against(tiny_payload(), tiny_payload(), tolerance=0)


class TestBaselineFiles:
    def test_load_baseline_roundtrip(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(tiny_payload()), encoding="utf-8")
        assert perf.load_baseline(str(path)) == tiny_payload()

    def test_load_baseline_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "other/9"}),
                        encoding="utf-8")
        with pytest.raises(ValueError, match="unexpected schema"):
            perf.load_baseline(str(path))

    def test_committed_ci_baseline_is_valid(self):
        """The file the CI perf-smoke job gates against must load and
        cover every benchmark in the ``all`` group."""
        baseline = perf.load_baseline(str(COMMITTED_BASELINE))
        assert set(perf.GROUPS["all"]) <= set(baseline["benchmarks"])
        for result in baseline["benchmarks"].values():
            assert result["events_per_sec"] > 0


class TestFormatReport:
    def test_mentions_every_benchmark_and_rate(self):
        report = perf.format_report(tiny_payload())
        assert "micro_events" in report
        assert "micro_messages" in report
        assert "events/s" in report and "messages/s" in report
