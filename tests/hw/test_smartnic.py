"""Tests for the SmartNIC: FIFOs, drains, broadcast, host messaging."""

import pytest

from repro.errors import ConfigError
from repro.hw.params import DEFAULT_MACHINE, ns
from repro.hw.smartnic import SmartNic
from repro.sim import Network, Simulator
from repro.sim.network import Mailbox


def build(params=DEFAULT_MACHINE, broadcast=True, batching=True, n=3):
    sim = Simulator()
    net = Network(sim)
    hosts = [Mailbox(sim, f"host{i}.inbox") for i in range(n)]
    snics = [SmartNic(sim, i, params, net, hosts[i], batching=batching,
                      broadcast=broadcast) for i in range(n)]
    return sim, net, hosts, snics


class TestFifos:
    def test_vfifo_enqueue_pays_write_latency(self):
        sim, _net, _hosts, snics = build()
        snic = snics[0]
        entry = snic.make_entry("k", (1, 0), "v", 1024)

        def proc():
            yield from snic.vfifo_enqueue(entry)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(ns(465))
        assert entry.written.triggered

    def test_dfifo_enqueue_pays_write_latency(self):
        sim, _net, _hosts, snics = build()
        snic = snics[0]
        entry = snic.make_entry("k", (1, 0), "v", 1024)

        def proc():
            yield from snic.dfifo_enqueue(entry)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(ns(1295))

    def test_drain_applies_and_fires_drained(self):
        sim, _net, _hosts, snics = build()
        snic = snics[0]
        applied = []

        def vapply(entry):
            yield sim.timeout(ns(100))
            applied.append(entry.key)
            entry.drained.succeed()

        def dapply(entry):
            entry.drained.succeed()
            return
            yield  # pragma: no cover

        snic.start_drains(vapply, dapply)
        entry = snic.make_entry("key1", (1, 0), "v", 1024)

        def proc():
            yield from snic.vfifo_enqueue(entry)
            yield entry.drained

        sim.run_process(proc())
        assert applied == ["key1"]

    def test_double_start_drains_rejected(self):
        _sim, _net, _hosts, snics = build()

        def noop(entry):
            entry.drained.succeed()
            return
            yield  # pragma: no cover

        snics[0].start_drains(noop, noop)
        with pytest.raises(ConfigError):
            snics[0].start_drains(noop, noop)

    def test_capacity_blocks_enqueue_until_drain(self):
        params = DEFAULT_MACHINE.with_fifo_entries(1)
        sim, _net, _hosts, snics = build(params=params)
        snic = snics[0]
        release = sim.event()

        def slow_apply(entry):
            yield release  # hold the drain until told
            entry.drained.succeed()

        def dapply(entry):
            entry.drained.succeed()
            return
            yield  # pragma: no cover

        snic.start_drains(slow_apply, dapply)
        log = []

        def producer():
            for i in range(6):
                entry = snic.make_entry(f"k{i}", (i, 0), "v", 1024)
                yield from snic.vfifo_enqueue(entry)
                log.append((i, sim.now))

        def releaser():
            yield sim.timeout(1e-3)
            release.succeed()

        sim.spawn(producer())
        sim.spawn(releaser())
        sim.run()
        # Four drain workers plus one capacity-1 slot absorb five entries;
        # the sixth enqueue must wait for the stalled drains to release.
        assert log[4][1] < 1e-4
        assert log[5][1] >= 1e-3


class TestMessaging:
    def test_send_multi_with_broadcast_is_one_wire_message(self):
        sim, _net, _hosts, snics = build(broadcast=True)
        got = []

        def receiver(i):
            packet = yield snics[i].net_inbox.get()
            got.append((i, sim.now))

        for i in (1, 2):
            sim.spawn(receiver(i))
        snics[0].send_multi([1, 2], "inv", 1024)
        sim.run()
        assert len(got) == 2
        assert abs(got[0][1] - got[1][1]) < 1e-12
        assert snics[0].messages_sent == 1

    def test_send_multi_without_broadcast_serializes(self):
        sim, _net, _hosts, snics = build(broadcast=False)
        got = []

        def receiver(i):
            packet = yield snics[i].net_inbox.get()
            got.append(sim.now)

        for i in (1, 2):
            sim.spawn(receiver(i))
        snics[0].send_multi([1, 2], "inv", 1024)
        sim.run()
        assert len(got) == 2
        assert abs(got[1] - got[0]) > 3e-7
        assert snics[0].messages_sent == 2

    def test_send_to_host_lands_in_host_inbox(self):
        sim, _net, hosts, snics = build()
        got = []

        def receiver():
            packet = yield hosts[0].get()
            got.append(packet.payload)

        sim.spawn(receiver())
        snics[0].send_to_host("batched-ack", 64)
        sim.run()
        assert got == ["batched-ack"]

    def test_host_deposit_reaches_snic(self):
        from repro.hw.nic import Envelope
        sim, _net, _hosts, snics = build()
        got = []

        def receiver():
            packet = yield snics[0].from_host.get()
            got.append(packet.payload.payload)

        sim.spawn(receiver())
        snics[0].host_deposit(Envelope(payload="inv", size_bytes=1024,
                                       src_node=0, dests=[1, 2]))
        sim.run()
        assert got == ["inv"]

    def test_coherent_access_cost(self):
        sim, _net, _hosts, snics = build()

        def proc():
            yield snics[0].coherent_access()
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(ns(60))

    def test_compute_uses_snic_cores(self):
        sim, _net, _hosts, snics = build()
        snic = snics[0]
        done = []

        def job(tag):
            yield from snic.compute(1e-6)
            done.append((tag, sim.now))

        for tag in range(9):  # 8 cores -> 9th job waits
            sim.spawn(job(tag))
        sim.run()
        assert done[-1][1] == pytest.approx(2e-6)
