"""Tests for the baseline NIC pipe (timing and batching/broadcast)."""

import pytest

from repro.errors import ConfigError
from repro.hw.nic import BaselineNic, Envelope, nic_endpoint
from repro.hw.params import DEFAULT_MACHINE
from repro.sim import Network, Simulator
from repro.sim.network import Mailbox


def build_pair(broadcast=False):
    """Two nodes: NIC 0 (sender under test) and NICs 1-3 (receivers)."""
    sim = Simulator()
    net = Network(sim)
    hosts = [Mailbox(sim, f"host{i}.inbox") for i in range(4)]
    nics = [BaselineNic(sim, i, DEFAULT_MACHINE, net, hosts[i],
                        broadcast=broadcast) for i in range(4)]
    return sim, net, hosts, nics


class TestEnvelope:
    def test_needs_exactly_one_destination_form(self):
        with pytest.raises(ConfigError):
            Envelope(payload=1, size_bytes=64, src_node=0)
        with pytest.raises(ConfigError):
            Envelope(payload=1, size_bytes=64, src_node=0, dst=1,
                     dests=[1, 2])

    def test_is_batched(self):
        single = Envelope(payload=1, size_bytes=64, src_node=0, dst=1)
        multi = Envelope(payload=1, size_bytes=64, src_node=0, dests=[1, 2])
        assert not single.is_batched
        assert multi.is_batched

    def test_endpoint_naming(self):
        assert nic_endpoint(3) == "nic3"


class TestDelivery:
    def test_single_message_end_to_end(self):
        sim, _net, hosts, nics = build_pair()
        received = []

        def receiver():
            packet = yield hosts[1].get()
            received.append((sim.now, packet.payload.payload))

        sim.spawn(receiver())
        nics[0].host_deposit(Envelope(payload="msg", size_bytes=1024,
                                      src_node=0, dst=1))
        sim.run()
        assert received and received[0][1] == "msg"
        # PCIe up + NIC send + network + NIC recv + PCIe down: ~2us scale
        assert 1e-6 < received[0][0] < 4e-6

    def test_deposit_records_time(self):
        sim, _net, _hosts, nics = build_pair()
        env = Envelope(payload="x", size_bytes=64, src_node=0, dst=1)
        nics[0].host_deposit(env)
        assert env.deposited_at == sim.now

    def test_consecutive_sends_are_staggered(self):
        """Per-message send cost + inter-message gap (Table III)."""
        sim, _net, hosts, nics = build_pair()
        arrivals = []

        def receiver(i):
            packet = yield hosts[i].get()
            arrivals.append((i, sim.now))

        for i in (1, 2, 3):
            sim.spawn(receiver(i))
        for i in (1, 2, 3):
            nics[0].host_deposit(Envelope(payload="inv", size_bytes=1024,
                                          src_node=0, dst=i))
        sim.run()
        times = sorted(t for _i, t in arrivals)
        assert times[1] - times[0] > 3e-7  # staggered, not simultaneous
        assert times[2] - times[1] > 3e-7

    def test_batched_without_broadcast_unpacks_per_destination(self):
        sim, _net, hosts, nics = build_pair(broadcast=False)
        arrivals = []

        def receiver(i):
            packet = yield hosts[i].get()
            arrivals.append(sim.now)

        for i in (1, 2, 3):
            sim.spawn(receiver(i))
        nics[0].host_deposit(Envelope(payload="inv", size_bytes=1024,
                                      src_node=0, dests=[1, 2, 3]))
        sim.run()
        assert len(arrivals) == 3
        assert max(arrivals) - min(arrivals) > 3e-7  # still serialized
        assert nics[0].messages_sent == 3

    def test_batched_with_broadcast_single_serialization(self):
        sim, _net, hosts, nics = build_pair(broadcast=True)
        arrivals = []

        def receiver(i):
            packet = yield hosts[i].get()
            arrivals.append(sim.now)

        for i in (1, 2, 3):
            sim.spawn(receiver(i))
        nics[0].host_deposit(Envelope(payload="inv", size_bytes=1024,
                                      src_node=0, dests=[1, 2, 3]))
        sim.run()
        assert len(arrivals) == 3
        # hardware fan-out: all copies hit the wire together
        assert max(arrivals) - min(arrivals) < 1e-9
        assert nics[0].messages_sent == 1
