"""Tests for the hardware parameter tables (paper Tables II/III)."""

import pytest

from repro.errors import ConfigError
from repro.hw.params import (DEFAULT_MACHINE, KB, MachineParams, gbps, ns,
                             us)


class TestUnits:
    def test_ns(self):
        assert ns(1295) == pytest.approx(1.295e-6)

    def test_us(self):
        assert us(500) == pytest.approx(5e-4)

    def test_gbps(self):
        assert gbps(6.25) == pytest.approx(6.25e9)


class TestTableIIIDefaults:
    """The paper's Table III values must survive refactoring."""

    def test_cluster_size(self):
        assert DEFAULT_MACHINE.nodes == 5

    def test_host(self):
        host = DEFAULT_MACHINE.host
        assert host.cores == 5
        assert host.frequency_hz == 2.1e9
        assert host.sync_latency == pytest.approx(ns(42))
        assert host.nvm_persist_per_kb == pytest.approx(ns(1295))

    def test_snic(self):
        snic = DEFAULT_MACHINE.snic
        assert snic.cores == 8
        assert snic.frequency_hz == 2.0e9
        assert snic.sync_latency == pytest.approx(ns(105))
        assert snic.vfifo_write_per_kb == pytest.approx(ns(465))
        assert snic.dfifo_write_per_kb == pytest.approx(ns(1295))
        assert snic.vfifo_entries == 5
        assert snic.dfifo_entries == 5

    def test_links(self):
        assert DEFAULT_MACHINE.pcie.latency == pytest.approx(ns(500))
        assert DEFAULT_MACHINE.pcie.bandwidth == pytest.approx(6.25e9)
        assert DEFAULT_MACHINE.network.latency == pytest.approx(ns(150))
        assert DEFAULT_MACHINE.network.bandwidth == pytest.approx(7e9)

    def test_nic_costs(self):
        nic = DEFAULT_MACHINE.nic
        assert nic.send_inv_cost == pytest.approx(ns(200))
        assert nic.send_ack_cost == pytest.approx(ns(100))
        assert nic.inter_message_gap == pytest.approx(ns(100))

    def test_record_size_is_ycsb_default(self):
        assert DEFAULT_MACHINE.record_size == KB


class TestDerived:
    def test_persist_time_scales_with_size(self):
        m = DEFAULT_MACHINE
        assert m.nvm_persist_time(KB) == pytest.approx(ns(1295))
        assert m.nvm_persist_time(2 * KB) == pytest.approx(ns(2590))

    def test_fifo_write_times(self):
        m = DEFAULT_MACHINE
        assert m.vfifo_write_time(KB) == pytest.approx(ns(465))
        assert m.dfifo_write_time(512) == pytest.approx(ns(1295) / 2)

    def test_with_nodes(self):
        m = DEFAULT_MACHINE.with_nodes(16)
        assert m.nodes == 16
        assert DEFAULT_MACHINE.nodes == 5  # frozen original untouched

    def test_with_persist_latency_leaves_dfifo_fixed(self):
        m = DEFAULT_MACHINE.with_persist_latency(us(100))
        assert m.host.nvm_persist_per_kb == pytest.approx(us(100))
        # The dFIFO is the SNIC's own NVM; it does not track the host's.
        assert m.snic.dfifo_write_per_kb == pytest.approx(ns(1295))

    def test_with_fifo_entries(self):
        m = DEFAULT_MACHINE.with_fifo_entries(None)
        assert m.snic.vfifo_entries is None
        assert m.snic.dfifo_entries is None


class TestValidation:
    def test_single_node_cluster_rejected(self):
        with pytest.raises(ConfigError):
            MachineParams(nodes=1)

    def test_bad_record_size_rejected(self):
        with pytest.raises(ConfigError):
            MachineParams(record_size=0)
