"""Tests for the timed memory devices."""

import pytest

from repro.errors import SimulationError
from repro.hw.memory import Llc, NvmDevice, TimedDevice
from repro.hw.params import ns
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestTimedDevice:
    def test_service_time_linear_in_size(self, sim):
        device = TimedDevice(sim, seconds_per_kb=ns(1000))
        assert device.service_time(1024) == pytest.approx(ns(1000))
        assert device.service_time(512) == pytest.approx(ns(500))

    def test_access_is_pure_delay(self, sim):
        """Concurrent accesses overlap (pipelined device model)."""
        device = TimedDevice(sim, seconds_per_kb=1.0)
        done = []

        def user(tag):
            yield device.access(1024)
            done.append((tag, sim.now))

        sim.spawn(user("a"))
        sim.spawn(user("b"))
        sim.run()
        assert done == [("a", 1.0), ("b", 1.0)]

    def test_negative_rate_rejected(self, sim):
        with pytest.raises(SimulationError):
            TimedDevice(sim, seconds_per_kb=-1.0)

    def test_negative_size_rejected(self, sim):
        device = TimedDevice(sim, 1.0)
        with pytest.raises(SimulationError):
            device.access(-1)

    def test_stats(self, sim):
        device = Llc(sim, ns(100))

        def proc():
            yield device.access(1024)
            yield device.access(2048)

        sim.run_process(proc())
        assert device.ops == 2
        assert device.bytes_processed == 3072


class TestNvm:
    def test_persist_is_access_alias(self, sim):
        nvm = NvmDevice(sim, ns(1295))

        def proc():
            yield nvm.persist(1024)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(ns(1295))
