"""Tests for the host model."""

import pytest

from repro.hw.host import Host
from repro.hw.params import DEFAULT_MACHINE, ns
from repro.sim import Simulator


@pytest.fixture
def host():
    return Host(Simulator(), node_id=0, params=DEFAULT_MACHINE)


class TestHostCompute:
    def test_compute_costs_time(self, host):
        sim = host.sim

        def proc():
            yield from host.compute(1e-6)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(1e-6)

    def test_zero_duration_is_free(self, host):
        sim = host.sim

        def proc():
            yield from host.compute(0.0)
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_core_contention(self, host):
        """With 5 cores, the sixth concurrent job waits."""
        sim = host.sim
        finish = []

        def job(tag):
            yield from host.compute(1e-6)
            finish.append((tag, sim.now))

        for tag in range(6):
            sim.spawn(job(tag))
        sim.run()
        assert finish[-1] == (5, pytest.approx(2e-6))
        assert all(t == pytest.approx(1e-6) for _tag, t in finish[:5])

    def test_sync_op_costs_cas_latency(self, host):
        sim = host.sim

        def proc():
            yield from host.sync_op()
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(ns(42))

    def test_busy_time_accounting(self, host):
        sim = host.sim

        def proc():
            yield from host.compute(3e-6)

        sim.run_process(proc())
        assert host.busy_time == pytest.approx(3e-6)
