"""Determinism rule: wall-clock, global RNG, unordered-set iteration."""

import textwrap


def _src(body):
    return {"src/repro/sim/mod.py": textwrap.dedent(body)}


class TestWallClock:
    def test_time_time_flagged(self, finding_index):
        index = finding_index(_src("""
            import time

            def now():
                return time.time()
        """), only=["determinism"])
        assert index["no-wallclock"] == [("src/repro/sim/mod.py", 5)]

    def test_datetime_now_flagged(self, finding_index):
        index = finding_index(_src("""
            import datetime

            def stamp():
                return datetime.datetime.now()
        """), only=["determinism"])
        assert "no-wallclock" in index

    def test_from_import_smuggling_flagged(self, finding_index):
        index = finding_index(_src("""
            from time import monotonic

            def now():
                return monotonic()
        """), only=["determinism"])
        assert index["no-wallclock"] == [("src/repro/sim/mod.py", 5)]

    def test_outside_subsystems_allowed(self, finding_index):
        index = finding_index({"src/repro/bench/perf.py": textwrap.dedent("""
            import time

            def wall():
                return time.perf_counter()
        """)}, only=["determinism"])
        assert index == {}


class TestGlobalRandom:
    def test_module_level_random_flagged(self, finding_index):
        index = finding_index(_src("""
            import random

            def pick(xs):
                return random.choice(xs)
        """), only=["determinism"])
        assert index["no-global-random"] == [("src/repro/sim/mod.py", 5)]

    def test_private_random_instance_allowed(self, finding_index):
        index = finding_index(_src("""
            import random

            def make_rng(seed):
                return random.Random(seed)
        """), only=["determinism"])
        assert index == {}


class TestSetIteration:
    def test_set_literal_for_loop_flagged(self, finding_index):
        index = finding_index(_src("""
            def fanout():
                for t in {1, 2, 3}:
                    yield t
        """), only=["determinism"])
        assert index["no-set-iteration"] == [("src/repro/sim/mod.py", 3)]

    def test_set_local_flagged(self, finding_index):
        index = finding_index(_src("""
            def fanout(items):
                targets = set(items)
                return [t for t in targets]
        """), only=["determinism"])
        assert "no-set-iteration" in index

    def test_sorted_set_allowed(self, finding_index):
        index = finding_index(_src("""
            def fanout(items):
                targets = set(items)
                return [t for t in sorted(targets)]
        """), only=["determinism"])
        assert index == {}

    def test_rebound_local_not_flagged(self, finding_index):
        # A name that was a set but is rebound to a list is exempt.
        index = finding_index(_src("""
            def fanout(items):
                targets = set(items)
                targets = sorted(targets)
                for t in targets:
                    yield t
        """), only=["determinism"])
        assert index == {}
