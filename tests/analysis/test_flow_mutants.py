"""Seeded-mutant gate for the flow-* rules.

Each test copies the real engine sources into a scratch tree, seeds
one protocol bug the corresponding rule exists to catch, and asserts
the rule fires — proving the rules are live against the *actual*
engines, not just against synthetic fixtures.  CI runs this file as
its mutant gate; a rule that stops firing here has rotted.

The anchors are exact source lines from the engines; if an engine
refactor moves them, the ``replace`` helper fails loudly rather than
silently testing nothing.
"""

import shutil

import pytest

from repro.analysis import find_project_root, run_analysis

ROOT = find_project_root()

BASELINE_ENGINE = "src/repro/core/baseline/engine.py"
OFFLOAD_ENGINE = "src/repro/core/offload/engine.py"

FLOW_RULES = ("flow-unhandled-message", "flow-send-without-timeout",
              "flow-durable-order", "flow-meta-race")


@pytest.fixture
def scratch(tmp_path):
    """A copy of ``src/repro`` the tests may mutate freely."""
    (tmp_path / "pyproject.toml").write_text("")
    shutil.copytree(ROOT / "src" / "repro", tmp_path / "src" / "repro")
    return tmp_path


def mutate(root, rel, old, new, count=None):
    """Replace *old* with *new* in ``root/rel``, failing if the anchor
    is gone (so an engine refactor breaks the gate visibly)."""
    path = root / rel
    source = path.read_text()
    found = source.count(old)
    assert found, f"mutation anchor not found in {rel}: {old!r}"
    if count is not None:
        assert found == count, f"anchor matched {found}x, expected {count}"
    path.write_text(source.replace(old, new))


def lint(root, only):
    return run_analysis(root=root, paths=["src/repro"], only=list(only))


def findings_for(result, rule_id):
    return [f for f in result.findings if f.rule == rule_id]


def test_clean_tree_is_quiet(scratch):
    """No flow rule fires on the unmutated engines (else every gate
    below is vacuous)."""
    result = lint(scratch, FLOW_RULES)
    assert result.findings == []


class TestUnhandledMessage:
    def test_dropping_the_val_dispatch_arm_fires(self, scratch):
        mutate(scratch, BASELINE_ENGINE,
               "        elif msg.type.is_val:\n"
               "            yield from self._follower_val(msg)\n"
               "        elif msg.type is MsgType.CKPT:",
               "        elif msg.type is MsgType.CKPT:")
        result = lint(scratch, ["flow-unhandled-message"])
        hits = findings_for(result, "flow-unhandled-message")
        assert hits, "VAL family now rejected by the net loop: must fire"
        unhandled = {f.message.split()[0] for f in hits}
        assert {"VAL", "VAL_C", "VAL_P"} <= unhandled
        assert all(f.severity == "error" for f in hits)


class TestSendWithoutTimeout:
    def test_dropping_the_retransmit_watchers_fires(self, scratch):
        mutate(scratch, BASELINE_ENGINE,
               "        self.watch_retransmits(txn, msg, self._resend)\n",
               "")
        result = lint(scratch, ["flow-send-without-timeout"])
        hits = findings_for(result, "flow-send-without-timeout")
        assert hits, "unprotected ACK waits must fire"
        symbols = {f.symbol for f in hits}
        assert "BaselineEngine.client_persist" in symbols


class TestDurableOrder:
    MUTATION = ("        ts = self.issue_ts(key)\n",
                "        ts = self.issue_ts(key)\n"
                "        self.kv.meta(key).set_glb_durable(ts)\n")

    def test_durable_advance_before_log_append_fires(self, scratch):
        mutate(scratch, BASELINE_ENGINE, *self.MUTATION)
        result = lint(scratch, ["flow-durable-order"])
        hits = findings_for(result, "flow-durable-order")
        assert hits, "glb_durableTS advanced before any log append"
        assert any(f.symbol == "BaselineEngine.client_write"
                   for f in hits)

    def test_supersedes_the_intraprocedural_warning(self, scratch):
        """The old intraprocedural ``meta-durable-without-log`` misses
        this mutant entirely (the witness lives in a callee), and what
        it does emit never gates — flow-durable-order is the only gate
        on durable ordering now."""
        mutate(scratch, BASELINE_ENGINE, *self.MUTATION)
        result = lint(scratch, ["protocol"])
        assert not result.gating


class TestMetaRace:
    def test_unmediated_meta_read_in_snic_handler_fires(self, scratch):
        mutate(scratch, OFFLOAD_ENGINE,
               "    def _snic_on_ack(self, msg: Message):\n"
               "        txn = self.txn(msg.write_id)\n",
               "    def _snic_on_ack(self, msg: Message):\n"
               "        txn = self.txn(msg.write_id)\n"
               "        stale = self.kv.meta(msg.key).volatile_ts\n")
        result = lint(scratch, ["flow-meta-race"])
        hits = findings_for(result, "flow-meta-race")
        assert hits, "raw volatile_ts read on the SNIC ACK path must fire"
        assert any(f.symbol == "OffloadEngine._snic_on_ack"
                   for f in hits)
