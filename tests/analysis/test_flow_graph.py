"""The protocol-flow IR (``repro.analysis.flow``) on the real tree.

These are the acceptance gates for the ``protocol-graph.json``
artifact: schema, 100% handler coverage for both engines, the dispatch
tables the paper's channel discipline implies, and the precision of
the send-site type resolution (no washed-out "could be anything"
entries on the protocol paths).
"""

import ast

import pytest

from repro.analysis import find_project_root
from repro.analysis.flow import (ARCH_FILES, GRAPH_SCHEMA,
                                 extract_protocol_graph)

ROOT = find_project_root()

BASE_FILE = "src/repro/core/engine.py"
ENGINE_CLASSES = {"baseline": "BaselineEngine", "offload": "OffloadEngine"}


@pytest.fixture(scope="module")
def graph():
    return extract_protocol_graph(ROOT)


def _class_methods(rel, class_name):
    tree = ast.parse((ROOT / rel).read_text())
    class_node = next(node for node in tree.body
                      if isinstance(node, ast.ClassDef)
                      and node.name == class_name)
    return {stmt.name for stmt in class_node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


class TestDocument:
    def test_schema_and_top_level_shape(self, graph):
        assert graph["schema"] == GRAPH_SCHEMA == "repro-protocol-graph/1"
        assert set(graph["arches"]) == {"baseline", "offload"}
        assert "BATCHED_ACK" in graph["msg_types"]
        assert set(graph["msg_groups"]["is_ack"]) == {
            "ACK", "ACK_C", "ACK_P"}
        assert set(graph["msg_groups"]["is_val"]) == {
            "VAL", "VAL_C", "VAL_P"}

    def test_all_seven_model_presets_present(self, graph):
        names = [model["name"] for model in graph["models"]]
        assert names == ["LIN_SYNCH", "LIN_STRICT", "LIN_RENF",
                         "LIN_EVENT", "LIN_SCOPE", "EC_SYNCH", "EC_EVENT"]
        lin_synch = graph["models"][0]
        assert lin_synch["consistency"] == "LINEARIZABLE"
        assert lin_synch["persistency"] == "SYNCHRONOUS"
        assert lin_synch["props"]["split_acks"] is False
        assert lin_synch["props"]["client_waits_for_persist"] is True


class TestHandlerCoverage:
    """The gate: every method of EngineBase and of both engine classes
    appears in the graph — a handler added to an engine but missing
    from the IR would silently escape every flow-* rule."""

    @pytest.mark.parametrize("arch", ["baseline", "offload"])
    def test_every_engine_method_is_in_the_graph(self, graph, arch):
        expected = _class_methods(BASE_FILE, "EngineBase")
        expected |= _class_methods("src/" + ARCH_FILES[arch],
                                   ENGINE_CLASSES[arch])
        functions = set(graph["arches"][arch]["functions"])
        missing = expected - functions
        assert not missing, f"{arch}: handlers missing from graph: {missing}"

    @pytest.mark.parametrize("arch", ["baseline", "offload"])
    def test_every_dispatch_handler_is_a_graph_function(self, graph, arch):
        arch_doc = graph["arches"][arch]
        functions = set(arch_doc["functions"])
        for channel, table in arch_doc["channels"].items():
            assert table["loop"] in functions
            for msg_type, handlers in table["handlers"].items():
                for handler in handlers:
                    assert handler in functions, \
                        f"{arch}/{channel}: {msg_type} -> {handler}"


class TestDispatchTables:
    def test_baseline_net_rejects_batched_ack(self, graph):
        net = graph["arches"]["baseline"]["channels"]["net"]
        assert "BATCHED_ACK" in net["rejected"]
        assert "BATCHED_ACK" not in net["accepted"]
        # 8 protocol types + the CKPT/CKPT_ACK checkpoint barrier.
        assert len(net["accepted"]) == 10
        assert "CKPT" in net["accepted"]
        assert "CKPT_ACK" in net["accepted"]

    def test_offload_pcie_host_to_snic_accepts_inv_and_persist_only(
            self, graph):
        table = (graph["arches"]["offload"]["channels"]
                 ["pcie_host_to_snic"])
        assert table["accepted"] == ["INV", "PERSIST"]
        assert not table["tolerant"]

    def test_offload_pcie_snic_to_host_is_tolerant(self, graph):
        table = (graph["arches"]["offload"]["channels"]
                 ["pcie_snic_to_host"])
        assert table["tolerant"]
        assert len(table["accepted"]) == 11


class TestSendPrecision:
    """Interprocedural type resolution must stay exact on the protocol
    paths — an ``unknown`` send site would make flow-unhandled-message
    vacuous for that edge."""

    def _sends_by_function(self, graph, arch):
        index = {}
        for send in graph["arches"][arch]["sends"]:
            index.setdefault(send["function"], []).append(send)
        return index

    def test_no_unknown_send_sites_anywhere(self, graph):
        for arch in ("baseline", "offload"):
            for send in graph["arches"][arch]["sends"]:
                assert not send["types"]["unknown"], \
                    f"{arch}: {send['function']}:{send['line']}"
                assert send["types"]["resolved"], \
                    f"{arch}: {send['function']}:{send['line']}"

    def test_offload_ack_forwarding_is_exactly_the_ack_group(self, graph):
        sends = self._sends_by_function(graph, "offload")["_snic_on_ack"]
        resolved = set()
        for send in sends:
            resolved.update(send["types"]["resolved"])
        assert resolved == {"ACK", "ACK_C", "ACK_P"}

    def test_offload_client_persist_sends_persist_only(self, graph):
        sends = self._sends_by_function(graph, "offload")["client_persist"]
        for send in sends:
            assert send["types"]["resolved"] == ["PERSIST"]

    def test_baseline_fanout_covers_the_coordinator_vocabulary(self, graph):
        """All baseline sends funnel through ``_deposit_fanout``; the
        interprocedural bindings must resolve it to exactly the
        coordinator-originated types (INVs, PERSISTs, and the VAL
        family) — never the ACK family, which only followers send."""
        sends = self._sends_by_function(graph, "baseline")["_deposit_fanout"]
        resolved = set()
        for send in sends:
            resolved.update(send["types"]["resolved"])
        assert resolved == {"INV", "PERSIST", "VAL", "VAL_C", "VAL_P",
                            "CKPT"}


class TestAutomata:
    def test_no_model_has_unhandled_messages(self, graph):
        for arch in ("baseline", "offload"):
            for name, automaton in (graph["arches"][arch]["models"]
                                    .items()):
                assert automaton["unhandled"] == [], f"{arch}/{name}"

    def test_dispatch_loops_are_reachable_in_every_model(self, graph):
        for arch in ("baseline", "offload"):
            arch_doc = graph["arches"][arch]
            loops = {table["loop"]
                     for table in arch_doc["channels"].values()}
            for name, automaton in arch_doc["models"].items():
                reachable = set(automaton["reachable"])
                assert loops <= reachable, f"{arch}/{name}"
