"""Shared fixtures for the static-analysis tests."""

import pytest

from repro.analysis import analyze_project, load_project_from_sources


@pytest.fixture
def check():
    """Run the analyzer over in-memory ``{relpath: source}`` dicts."""

    def run(sources, only=None, baseline=None):
        project = load_project_from_sources(sources)
        return analyze_project(project, baseline=baseline, only=only)

    return run


@pytest.fixture
def finding_index(check):
    """Like ``check`` but returns ``{rule_id: [(path, line), ...]}``."""

    def run(sources, only=None):
        result = check(sources, only=only)
        index = {}
        for finding in result.findings:
            index.setdefault(finding.rule, []).append(
                (finding.path, finding.line))
        return index

    return run
