"""API discipline rule: facade __all__ drift and example imports."""

import textwrap


class TestFacadeDrift:
    def test_unbound_export_flagged(self, finding_index):
        index = finding_index({"src/repro/api.py": textwrap.dedent("""
            from repro.core.timestamp import Timestamp

            __all__ = ["Timestamp", "Ghost"]
        """)}, only=["api"])
        assert index["api-all-drift"] == [("src/repro/api.py", 4)]

    def test_unexported_binding_flagged(self, finding_index):
        index = finding_index({"src/repro/api.py": textwrap.dedent("""
            from repro.core.timestamp import Timestamp
            from repro.core.config import ProtocolConfig

            __all__ = ["Timestamp"]
        """)}, only=["api"])
        assert "api-all-drift" in index

    def test_consistent_facade_clean(self, finding_index):
        # A tiny-but-consistent facade drifts nowhere; it does miss the
        # required exports, which is the separate api-facade rule's job.
        index = finding_index({"src/repro/api.py": textwrap.dedent("""
            from repro.core.timestamp import Timestamp

            __all__ = ["Timestamp"]
        """)}, only=["api"])
        assert "api-all-drift" not in index

    def test_private_names_exempt(self, finding_index):
        index = finding_index({"src/repro/api.py": textwrap.dedent("""
            from repro.core.timestamp import Timestamp
            import typing as _typing

            __all__ = ["Timestamp"]
        """)}, only=["api"])
        assert "api-all-drift" not in index


class TestRequiredExports:
    def full_facade(self, drop=()):
        from repro.analysis.rules.api import REQUIRED_EXPORTS

        names = sorted(REQUIRED_EXPORTS - set(drop))
        imports = "\n".join(f"{name} = object()" for name in names)
        exports = ", ".join(f'"{name}"' for name in names)
        return f"{imports}\n\n__all__ = [{exports}]\n"

    def test_full_facade_clean(self, finding_index):
        index = finding_index(
            {"src/repro/api.py": self.full_facade()}, only=["api"])
        assert index == {}

    def test_dropped_required_export_flagged(self, finding_index):
        index = finding_index(
            {"src/repro/api.py": self.full_facade(drop=("run_check",))},
            only=["api"])
        assert "api-facade" in index

    def test_checker_names_are_required(self):
        from repro.analysis.rules.api import REQUIRED_EXPORTS

        assert {"run_check", "CheckReport", "check_linearizability",
                "check_durability", "shrink_history",
                "HistoryRecorder"} <= REQUIRED_EXPORTS


class TestExampleImports:
    def test_deep_import_flagged(self, finding_index):
        index = finding_index({"examples/demo.py": textwrap.dedent("""
            from repro.api import MinosCluster
            from repro.core.engine import EngineBase
        """)}, only=["api"])
        assert index["api-import-discipline"] == [("examples/demo.py", 3)]

    def test_bare_repro_import_flagged(self, finding_index):
        index = finding_index({"examples/demo.py": textwrap.dedent("""
            from repro import MinosCluster
        """)}, only=["api"])
        assert "api-import-discipline" in index

    def test_api_and_stdlib_clean(self, finding_index):
        index = finding_index({"examples/demo.py": textwrap.dedent("""
            import argparse

            from repro.api import MinosCluster, YcsbWorkload
        """)}, only=["api"])
        assert index == {}

    def test_non_example_files_unconstrained(self, finding_index):
        index = finding_index({"src/repro/cluster/x.py": textwrap.dedent("""
            from repro.core.engine import EngineBase
        """)}, only=["api"])
        assert index == {}
