"""API discipline rule: facade __all__ drift and example imports."""

import textwrap


class TestFacadeDrift:
    def test_unbound_export_flagged(self, finding_index):
        index = finding_index({"src/repro/api.py": textwrap.dedent("""
            from repro.core.timestamp import Timestamp

            __all__ = ["Timestamp", "Ghost"]
        """)}, only=["api"])
        assert index["api-all-drift"] == [("src/repro/api.py", 4)]

    def test_unexported_binding_flagged(self, finding_index):
        index = finding_index({"src/repro/api.py": textwrap.dedent("""
            from repro.core.timestamp import Timestamp
            from repro.core.config import ProtocolConfig

            __all__ = ["Timestamp"]
        """)}, only=["api"])
        assert "api-all-drift" in index

    def test_consistent_facade_clean(self, finding_index):
        index = finding_index({"src/repro/api.py": textwrap.dedent("""
            from repro.core.timestamp import Timestamp

            __all__ = ["Timestamp"]
        """)}, only=["api"])
        assert index == {}

    def test_private_names_exempt(self, finding_index):
        index = finding_index({"src/repro/api.py": textwrap.dedent("""
            from repro.core.timestamp import Timestamp
            import typing as _typing

            __all__ = ["Timestamp"]
        """)}, only=["api"])
        assert index == {}


class TestExampleImports:
    def test_deep_import_flagged(self, finding_index):
        index = finding_index({"examples/demo.py": textwrap.dedent("""
            from repro.api import MinosCluster
            from repro.core.engine import EngineBase
        """)}, only=["api"])
        assert index["api-import-discipline"] == [("examples/demo.py", 3)]

    def test_bare_repro_import_flagged(self, finding_index):
        index = finding_index({"examples/demo.py": textwrap.dedent("""
            from repro import MinosCluster
        """)}, only=["api"])
        assert "api-import-discipline" in index

    def test_api_and_stdlib_clean(self, finding_index):
        index = finding_index({"examples/demo.py": textwrap.dedent("""
            import argparse

            from repro.api import MinosCluster, YcsbWorkload
        """)}, only=["api"])
        assert index == {}

    def test_non_example_files_unconstrained(self, finding_index):
        index = finding_index({"src/repro/cluster/x.py": textwrap.dedent("""
            from repro.core.engine import EngineBase
        """)}, only=["api"])
        assert index == {}
