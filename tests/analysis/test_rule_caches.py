"""no-module-mutable-cache: function-mutated module globals in repro."""

import textwrap

ONLY = ["no-module-mutable-cache"]


def _src(body):
    return {"src/repro/workloads/mod.py": textwrap.dedent(body)}


class TestFlagged:
    def test_dict_memo_flagged_at_declaration(self, finding_index):
        index = finding_index(_src("""
            _cache = {}

            def zeta(n):
                if n not in _cache:
                    _cache[n] = n * n
                return _cache[n]
        """), only=ONLY)
        assert index["no-module-mutable-cache"] == [
            ("src/repro/workloads/mod.py", 2)]

    def test_constructor_call_and_method_mutation_flagged(
            self, finding_index):
        index = finding_index(_src("""
            _seen = set()

            def dedupe(key):
                _seen.add(key)
        """), only=ONLY)
        assert "no-module-mutable-cache" in index

    def test_annotated_list_append_flagged(self, finding_index):
        index = finding_index(_src("""
            _log: list = []

            def record(entry):
                _log.append(entry)
        """), only=ONLY)
        assert "no-module-mutable-cache" in index

    def test_global_rebinding_flagged(self, finding_index):
        index = finding_index(_src("""
            _table = {}

            def reset():
                global _table
                _table = {}
        """), only=ONLY)
        assert "no-module-mutable-cache" in index

    def test_method_body_mutation_flagged(self, finding_index):
        index = finding_index(_src("""
            _memo = {}

            class Gen:
                def value(self, n):
                    _memo[n] = n
                    return _memo[n]
        """), only=ONLY)
        assert "no-module-mutable-cache" in index

    def test_outside_workloads_also_flagged(self, finding_index):
        """The ban is tree-wide, not workloads-only."""
        index = finding_index({
            "src/repro/metrics/mod.py": textwrap.dedent("""
                _cache = {}

                def get(n):
                    _cache[n] = n
                    return _cache[n]
            """)}, only=ONLY)
        assert index["no-module-mutable-cache"] == [
            ("src/repro/metrics/mod.py", 2)]


class TestAllowed:
    def test_read_only_constant_table_allowed(self, finding_index):
        index = finding_index(_src("""
            STEPS = {"login": 3, "compose": 5}

            def cost(name):
                return STEPS[name]
        """), only=ONLY)
        assert index == {}

    def test_local_shadow_allowed(self, finding_index):
        index = finding_index(_src("""
            TABLE = {}

            def build():
                TABLE = {}
                TABLE["x"] = 1
                return TABLE
        """), only=ONLY)
        assert index == {}

    def test_parameter_shadow_allowed(self, finding_index):
        index = finding_index(_src("""
            _rows = []

            def fill(_rows):
                _rows.append(1)
        """), only=ONLY)
        assert index == {}

    def test_lru_cache_decorator_allowed(self, finding_index):
        index = finding_index(_src("""
            from functools import lru_cache

            @lru_cache(maxsize=128)
            def zeta(n):
                return sum(1.0 / i for i in range(1, n + 1))
        """), only=ONLY)
        assert index == {}

def test_workloads_tree_is_clean(finding_index):
    """The shipped workload generators satisfy their own rule (the
    zipfian zeta memo is an lru_cache, not a module dict)."""
    import pathlib

    import repro.workloads as pkg

    root = pathlib.Path(pkg.__file__).parent
    sources = {
        f"src/repro/workloads/{path.name}": path.read_text()
        for path in root.glob("*.py")
    }
    assert finding_index(sources, only=ONLY) == {}
