"""Slots rule: undeclared-slot assignment and hot-path coverage."""

import textwrap


class TestSlotsUndeclared:
    def test_assignment_outside_slots_flagged(self, finding_index):
        index = finding_index({"src/repro/sim/events.py": textwrap.dedent("""
            class Event:
                __slots__ = ("ts",)

                def __init__(self):
                    self.ts = 0
                    self.callback = None
        """)}, only=["slots"])
        assert index["slots-undeclared"] == [("src/repro/sim/events.py", 7)]

    def test_inherited_slots_count(self, finding_index):
        index = finding_index({"src/repro/sim/events.py": textwrap.dedent("""
            class Event:
                __slots__ = ("ts",)

            class Timeout(Event):
                __slots__ = ("deadline",)

                def __init__(self):
                    self.ts = 0
                    self.deadline = 1
        """)}, only=["slots"])
        assert "slots-undeclared" not in index

    def test_unslotted_base_disables_check(self, finding_index):
        # A __dict__-ful base means assignments cannot fail at runtime.
        index = finding_index({"src/repro/sim/events.py": textwrap.dedent("""
            class Base:
                pass

            class Timeout(Base):
                __slots__ = ("deadline",)

                def __init__(self):
                    self.anything = 1
        """)}, only=["slots"])
        assert "slots-undeclared" not in index


class TestSlotsRequired:
    def test_bare_class_in_hot_path_flagged(self, finding_index):
        index = finding_index({"src/repro/core/thing.py": textwrap.dedent("""
            class Fresh:
                def __init__(self):
                    self.x = 1
        """)}, only=["slots"])
        assert index["slots-required"] == [("src/repro/core/thing.py", 2)]

    def test_outside_hot_path_allowed(self, finding_index):
        index = finding_index({
            "src/repro/bench/thing.py": "class Fresh:\n    pass\n",
        }, only=["slots"])
        assert index == {}

    def test_slotted_dataclass_allowed(self, finding_index):
        index = finding_index({"src/repro/core/thing.py": textwrap.dedent("""
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Rec:
                x: int
        """)}, only=["slots"])
        assert index == {}

    def test_enum_and_exception_exempt(self, finding_index):
        index = finding_index({"src/repro/core/thing.py": textwrap.dedent("""
            import enum

            class Kind(enum.Enum):
                A = 1

            class ProtocolError(Exception):
                pass
        """)}, only=["slots"])
        assert index == {}

    def test_subclass_of_unslotted_base_exempt(self, finding_index):
        # Slots on a subclass of a __dict__-ful (grandfathered) base buy
        # nothing; only the base itself is reported.
        index = finding_index({"src/repro/core/engines.py": textwrap.dedent("""
            class EngineBase:
                pass

            class BaselineEngine(EngineBase):
                pass
        """)}, only=["slots"])
        assert index["slots-required"] == [("src/repro/core/engines.py", 2)]
