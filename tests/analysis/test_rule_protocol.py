"""Metadata access analyzer: direct writes, durable-without-log, races,
and the per-handler access table."""

import textwrap

from repro.analysis import analyze_project, load_project_from_sources

ENGINE_PATH = "src/repro/core/baseline/engine.py"


def _engine(body):
    return {ENGINE_PATH: textwrap.dedent(body)}


class TestDirectWrite:
    def test_raw_field_assignment_flagged(self, finding_index):
        index = finding_index(_engine("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def handler(self, key, ts):
                    meta = self.kv.meta(key)
                    meta.glb_durable_ts = ts
        """), only=["protocol"])
        assert (ENGINE_PATH, 7) in index["meta-direct-write"]

    def test_accessor_write_allowed(self, finding_index):
        index = finding_index(_engine("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def handler(self, key, ts, txn):
                    meta = self.kv.meta(key)
                    yield txn.all_acks
                    meta.set_glb_volatile(ts)
        """), only=["protocol"])
        assert "meta-direct-write" not in index

    def test_sanctioned_inside_metadata_module(self, finding_index):
        index = finding_index({
            "src/repro/core/metadata.py": textwrap.dedent("""
                class RecordMeta:
                    def set_glb_durable(self, ts):
                        self.glb_durable_ts = ts
            """)}, only=["protocol"])
        assert "meta-direct-write" not in index


class TestDurableWithoutLog:
    def test_unwitnessed_durable_advance_flagged(self, finding_index):
        index = finding_index(_engine("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def handler(self, key, ts):
                    meta = self.kv.meta(key)
                    meta.set_glb_durable(ts)
        """), only=["protocol"])
        assert index["meta-durable-without-log"] == [(ENGINE_PATH, 7)]

    def test_ack_wait_witnesses(self, finding_index):
        index = finding_index(_engine("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def handler(self, key, ts, txn):
                    meta = self.kv.meta(key)
                    yield txn.all_ack_ps
                    meta.set_glb_durable(ts)
        """), only=["protocol"])
        assert "meta-durable-without-log" not in index

    def test_log_append_witnesses(self, finding_index):
        index = finding_index(_engine("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def handler(self, key, ts, value):
                    meta = self.kv.meta(key)
                    self.kv.persist(key, value, ts)
                    meta.set_glb_durable(ts)
        """), only=["protocol"])
        assert "meta-durable-without-log" not in index

    def test_val_p_dispatch_witnesses(self, finding_index):
        index = finding_index(_engine("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def handler(self, msg):
                    meta = self.kv.meta(msg.key)
                    if msg.type is MsgType.VAL_P:
                        meta.set_glb_durable(msg.ts)
        """), only=["protocol"])
        assert "meta-durable-without-log" not in index


class TestRace:
    def test_unmediated_conflicting_access_flagged(self, finding_index):
        index = finding_index(_engine("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def reader(self, key, ts):
                    meta = self.kv.meta(key)
                    return meta.volatile_ts < ts

                def writer(self, key, ts):
                    meta = self.kv.meta(key)
                    meta.set_volatile(ts)
        """), only=["protocol"])
        assert index["meta-race"] == [(ENGINE_PATH, 7)]

    def test_wrlock_span_mediates(self, finding_index):
        index = finding_index(_engine("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def reader(self, key, ts):
                    meta = self.kv.meta(key)
                    yield meta.wrlock.acquire()
                    obsolete = meta.volatile_ts < ts
                    meta.wrlock.release()
                    return obsolete

                def writer(self, key, ts):
                    meta = self.kv.meta(key)
                    meta.set_volatile(ts)
        """), only=["protocol"])
        assert "meta-race" not in index

    def test_fifo_drain_mediates(self, finding_index):
        index = finding_index(_engine("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def __init__(self, snic):
                    snic.start_drains(self._vfifo_apply, self._dfifo_apply)

                def _vfifo_apply(self, entry):
                    meta = self.kv.meta(entry.key)
                    return entry.ts < meta.volatile_ts

                def _dfifo_apply(self, entry):
                    pass

                def writer(self, key, ts):
                    meta = self.kv.meta(key)
                    meta.set_volatile(ts)
        """), only=["protocol"])
        assert "meta-race" not in index


class TestAccessTable:
    def _result(self, body):
        project = load_project_from_sources(_engine(body))
        return analyze_project(project, only=["protocol"])

    def test_table_lists_every_handler(self):
        result = self._result("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def touches(self, key, ts, txn):
                    meta = self.kv.meta(key)
                    yield txn.all_acks
                    meta.set_glb_volatile(ts)

                def does_not(self):
                    return 42
        """)
        handlers = result.tables["metadata_access"]["engines"][
            "BaselineEngine"]
        assert set(handlers) == {"touches", "does_not"}
        assert handlers["touches"]["writes"] == {"glb_volatile_ts": [8]}
        assert handlers["does_not"]["reads"] == {}

    def test_reader_methods_mapped_to_fields(self):
        result = self._result("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def handler(self, key, ts):
                    meta = self.kv.meta(key)
                    if meta.is_obsolete(ts):
                        return
                    yield from meta.persistency_spin()
        """)
        handler = result.tables["metadata_access"]["engines"][
            "BaselineEngine"]["handler"]
        assert set(handler["reads"]) == {"volatile_ts", "glb_durable_ts"}

    def test_field_writers_diff_section(self):
        result = self._result("""
            class EngineBase: pass

            class BaselineEngine(EngineBase):
                def a(self, key, ts, txn):
                    meta = self.kv.meta(key)
                    yield txn.all_acks
                    meta.set_glb_durable(ts)
        """)
        writers = result.tables["metadata_access"]["field_writers"]
        assert writers["glb_durable_ts"] == {"BaselineEngine": ["a"]}
