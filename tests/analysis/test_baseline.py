"""Baseline suppression file: matching, partition, exact round-trip."""

from repro.analysis import Baseline, Finding, Suppression


def _finding(rule="slots-required", path="src/repro/sim/kernel.py",
             symbol="Simulator", line=41):
    return Finding(rule=rule, path=path, line=line, symbol=symbol,
                   message="msg")


class TestMatching:
    def test_matches_on_rule_path_symbol(self):
        baseline = Baseline([Suppression(
            rule="slots-required", path="src/repro/sim/kernel.py",
            symbol="Simulator")])
        assert baseline.matches(_finding())
        assert baseline.matches(_finding(line=999))  # line-free
        assert not baseline.matches(_finding(symbol="Other"))
        assert not baseline.matches(_finding(rule="meta-race"))

    def test_partition(self):
        baseline = Baseline([Suppression(
            rule="slots-required", path="src/repro/sim/kernel.py",
            symbol="Simulator")])
        live, suppressed = baseline.partition(
            [_finding(), _finding(symbol="Fresh")])
        assert [f.symbol for f in suppressed] == ["Simulator"]
        assert [f.symbol for f in live] == ["Fresh"]


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        baseline = Baseline([
            Suppression(rule="b", path="z.py", symbol="S", reason="why"),
            Suppression(rule="a", path="a.py", symbol="T"),
        ])
        path = tmp_path / "lint-baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded == baseline
        # Saving the loaded copy is byte-identical (no churn on commit).
        again = tmp_path / "again.json"
        loaded.save(again)
        assert path.read_text() == again.read_text()

    def test_entries_sorted(self):
        baseline = Baseline([
            Suppression(rule="z", path="p", symbol="s"),
            Suppression(rule="a", path="p", symbol="s"),
        ])
        assert [s.rule for s in baseline.entries] == ["a", "z"]

    def test_from_findings(self):
        baseline = Baseline.from_findings(
            [_finding(), _finding()], reason="grandfathered")
        assert len(baseline) == 1
        assert baseline.entries[0].reason == "grandfathered"

    def test_committed_repo_baseline_round_trips(self):
        """The checked-in lint-baseline.json is in canonical form."""
        from repro.analysis.core import find_project_root

        path = find_project_root() / "lint-baseline.json"
        loaded = Baseline.load(path)
        import json

        assert (json.dumps(loaded.to_dict(), indent=2) + "\n"
                == path.read_text())
