"""Framework-level tests: loading, symbols, registry, suppression."""

import textwrap

from repro.analysis import (RULES, Finding, load_project,
                            load_project_from_sources, parse_module)
from repro.analysis.core import enclosing_symbol


class TestParsing:
    def test_qualnames_and_classes(self):
        module = parse_module("src/repro/sim/x.py", textwrap.dedent("""
            class Outer:
                __slots__ = ("a",)
                def method(self):
                    pass

            def top():
                pass
        """))
        names = set(module.qualnames.values())
        assert {"Outer", "Outer.method", "top"} <= names
        (info,) = module.classes
        assert info.name == "Outer"
        assert info.slots == ("a",)
        assert info.slotted

    def test_dataclass_slots_detected(self):
        module = parse_module("m.py", textwrap.dedent("""
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Rec:
                x: int
                y: float = 0.0
        """))
        (info,) = module.classes
        assert info.is_dataclass and info.dataclass_slots
        assert info.slots == ("x", "y")

    def test_package_rel_strips_src(self):
        module = parse_module("src/repro/core/engine.py", "")
        assert module.package_rel == "repro/core/engine.py"
        assert module.in_subsystem("repro/core")
        assert not module.in_subsystem("repro/sim")

    def test_enclosing_symbol_picks_smallest_scope(self):
        module = parse_module("m.py", textwrap.dedent("""
            class C:
                def method(self):
                    x = 1
                    return x
        """))
        target = None
        import ast

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Return):
                target = node
        assert enclosing_symbol(module, target) == "C.method"


class TestProject:
    def test_resolve_class_and_mro_slots(self):
        project = load_project_from_sources({
            "a.py": "class Base:\n    __slots__ = ('x',)\n",
            "b.py": ("class Child(Base):\n"
                     "    __slots__ = ('y',)\n"),
        })
        child = project.resolve_class("Child")
        assert child is not None
        assert set(project.known_mro_slots(child)) == {"x", "y"}

    def test_mro_slots_none_when_base_unslotted(self):
        project = load_project_from_sources({
            "a.py": "class Base:\n    pass\n",
            "b.py": ("class Child(Base):\n"
                     "    __slots__ = ('y',)\n"),
        })
        child = project.resolve_class("Child")
        assert project.known_mro_slots(child) is None

    def test_parse_error_becomes_finding(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("")
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("def broken(:\n")
        project = load_project(tmp_path)
        assert len(project.parse_errors) == 1
        assert project.parse_errors[0].rule == "parse-error"


class TestRegistry:
    def test_all_five_rule_modules_registered(self):
        from repro.analysis.core import _load_rules

        _load_rules()
        assert {"protocol", "determinism", "slots", "fastpath",
                "api"} <= set(RULES)


class TestSuppressionKey:
    def test_key_is_line_free(self):
        a = Finding(rule="r", path="p.py", line=3, symbol="C.m",
                    message="x")
        b = Finding(rule="r", path="p.py", line=99, symbol="C.m",
                    message="moved")
        assert a.suppression_key == b.suppression_key
