"""Regression tests for the ``repro lint --graph`` content-hash cache.

The lint CLI used to re-derive the protocol graph on every invocation
even when the exported ``protocol-graph.json`` was current.  The fix
(:func:`repro.compile.graphio.refresh_graph`) stamps every exported
document with a SHA-256 *content* fingerprint of the whole
``src/repro`` tree and skips the derivation when the stored fingerprint
matches — so these tests pin the cache contract: hit on an unchanged
tree, invalidate on any engine-source edit (content, not mtime), honor
``--no-cache``, and never trust a document without a fingerprint.
"""

import json
import shutil

import pytest

from repro.analysis import find_project_root
from repro.compile.graphio import (FINGERPRINT_KEY, load_graph,
                                   refresh_graph, source_fingerprint)

ROOT = find_project_root()

ENGINE = "src/repro/core/baseline/engine.py"


@pytest.fixture
def scratch(tmp_path):
    """A copy of ``src/repro`` the tests may mutate freely."""
    (tmp_path / "pyproject.toml").write_text("")
    shutil.copytree(ROOT / "src" / "repro", tmp_path / "src" / "repro")
    return tmp_path


def derive_stub():
    """Stands in for the expensive flow export; the cache logic only
    cares that the document round-trips with a fingerprint."""
    return {"schema": "repro-protocol-graph/1", "arches": {}}


def test_cache_hit_skips_derivation(scratch, tmp_path):
    path = tmp_path / "protocol-graph.json"
    calls = []

    def derive():
        calls.append(1)
        return derive_stub()

    assert refresh_graph(path, root=scratch, derive=derive) is True
    assert refresh_graph(path, root=scratch, derive=derive) is False
    assert calls == [1], "second refresh must not re-derive"
    document = json.loads(path.read_text())
    assert document[FINGERPRINT_KEY] == source_fingerprint(scratch)


def test_engine_source_edit_invalidates(scratch, tmp_path):
    """A one-byte *content* change to an engine source re-derives; the
    cache never consults mtimes."""
    path = tmp_path / "protocol-graph.json"
    assert refresh_graph(path, root=scratch, derive=derive_stub) is True
    assert refresh_graph(path, root=scratch, derive=derive_stub) is False
    engine = scratch / ENGINE
    engine.write_text(engine.read_text() + "\n# mutated\n")
    assert refresh_graph(path, root=scratch, derive=derive_stub) is True
    assert refresh_graph(path, root=scratch, derive=derive_stub) is False


def test_no_cache_escape_hatch(scratch, tmp_path):
    """``--no-cache`` (use_cache=False) rewrites even a current file."""
    path = tmp_path / "protocol-graph.json"
    assert refresh_graph(path, root=scratch, derive=derive_stub) is True
    assert refresh_graph(path, root=scratch, derive=derive_stub,
                         use_cache=False) is True


def test_unfingerprinted_or_corrupt_file_is_stale(scratch, tmp_path):
    path = tmp_path / "protocol-graph.json"
    # Pre-cache export without a fingerprint: always stale.
    path.write_text(json.dumps(derive_stub()))
    assert load_graph(path, root=scratch) is None
    assert refresh_graph(path, root=scratch, derive=derive_stub) is True
    # Corrupt JSON: stale, not a crash.
    path.write_text("{not json")
    assert load_graph(path, root=scratch) is None
    assert refresh_graph(path, root=scratch, derive=derive_stub) is True


def test_committed_graph_is_current():
    """The repo's committed ``protocol-graph.json`` must carry the
    current tree's fingerprint — CI and fresh checkouts rely on it for
    fast compiler startup (regenerate with ``repro lint --graph
    protocol-graph.json --no-cache``)."""
    committed = ROOT / "protocol-graph.json"
    assert committed.is_file(), "protocol-graph.json not committed"
    assert load_graph(committed, root=ROOT) is not None, \
        "committed protocol-graph.json is stale — regenerate it"
