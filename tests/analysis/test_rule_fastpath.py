"""Fast-path parity rule: observer-only guards and fork equivalence."""

import textwrap


def _src(body):
    return {"src/repro/sim/network.py": textwrap.dedent(body)}


class TestObserverEffect:
    def test_mutating_guarded_arm_flagged(self, finding_index):
        index = finding_index(_src("""
            class Port:
                __slots__ = ("tracer", "drops")

                def deliver(self, pkt):
                    if self.tracer is not None:
                        self.drops = self.drops + 1
        """), only=["fastpath"])
        assert index["fastpath-observer-effect"] == [
            ("src/repro/sim/network.py", 6)]

    def test_trace_only_arm_allowed(self, finding_index):
        index = finding_index(_src("""
            class Port:
                __slots__ = ("tracer",)

                def deliver(self, pkt):
                    if self.tracer is not None:
                        self.trace("deliver", pkt)
                        self.tracer.record(pkt)
                    self.schedule(pkt)
        """), only=["fastpath"])
        assert "fastpath-observer-effect" not in index


class TestDivergentFork:
    def test_divergent_arms_flagged(self, finding_index):
        index = finding_index(_src("""
            class Port:
                __slots__ = ("fault_injector",)

                def deliver(self, pkt):
                    if self.fault_injector is not None:
                        self.drop(pkt)
                    else:
                        self.schedule(pkt)
        """), only=["fastpath"])
        assert index["fastpath-divergent-fork"] == [
            ("src/repro/sim/network.py", 6)]

    def test_equivalent_arms_allowed(self, finding_index):
        # The Port._deliver shape: injector arm reschedules through the
        # same helper, then early-returns; tail is the plain path.
        index = finding_index(_src("""
            class Port:
                __slots__ = ("fault_injector",)

                def deliver(self, pkt, mailbox, when):
                    injector = self.fault_injector
                    if injector is not None:
                        for copy, arrival in injector.deliveries(pkt, when):
                            self._schedule_delivery(copy, mailbox, arrival)
                        return
                    self._schedule_delivery(pkt, mailbox, when)
        """), only=["fastpath"])
        assert index == {}

    def test_outside_subsystems_ignored(self, finding_index):
        index = finding_index({
            "src/repro/bench/perf.py": textwrap.dedent("""
                class Runner:
                    def run(self):
                        if self.tracer is not None:
                            self.counter = 1
            """)}, only=["fastpath"])
        assert index == {}
