"""End-to-end ``repro lint``: CLI behavior, JSON payload, import
hygiene, and the acceptance gates the CI job relies on."""

import ast
import json
import os
import subprocess
import sys
import textwrap

from repro.analysis import find_project_root
from repro.cli import main

ROOT = find_project_root()


def _run_lint(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd or ROOT, env=env, capture_output=True, text=True)


class TestRepoIsClean:
    def test_lint_exits_zero_on_tree(self):
        proc = _run_lint()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_json_payload_shape(self):
        proc = _run_lint("--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["schema"] == "repro-lint/1"
        assert payload["findings"] == []
        assert payload["files_checked"] > 50

    def test_access_table_covers_every_engine_handler(self):
        proc = _run_lint("--json")
        payload = json.loads(proc.stdout)
        engines = payload["metadata_access"]["engines"]
        for engine_name, rel in (
                ("BaselineEngine", "src/repro/core/baseline/engine.py"),
                ("OffloadEngine", "src/repro/core/offload/engine.py")):
            tree = ast.parse((ROOT / rel).read_text())
            class_node = next(
                node for node in tree.body
                if isinstance(node, ast.ClassDef)
                and node.name == engine_name)
            methods = {stmt.name for stmt in class_node.body
                       if isinstance(stmt, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))}
            assert set(engines[engine_name]) == methods
            # The protocol's commit points must be visible in the table.
            writers = {h for h, d in engines[engine_name].items()
                       if "glb_durable_ts" in d["writes"]}
            assert writers, f"no glb_durable_ts writers in {engine_name}"

    def test_lint_does_not_import_simulator(self):
        code = textwrap.dedent("""
            import sys
            import repro.cli
            import repro.analysis
            bad = [m for m in sys.modules
                   if m.startswith(('repro.sim', 'repro.core',
                                    'repro.hw', 'repro.api'))]
            sys.exit(1 if bad else 0)
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


class TestSeededViolation:
    def _scratch(self, tmp_path, source):
        (tmp_path / "pyproject.toml").write_text("")
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "kernel.py").write_text(textwrap.dedent(source))
        return tmp_path

    def test_violation_fails_with_rule_and_line(self, tmp_path, capsys):
        root = self._scratch(tmp_path, """
            import time

            def now():
                return time.time()
        """)
        code = main(["lint", str(root / "src" / "repro"),
                     "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no-wallclock" in out
        assert "kernel.py:5" in out

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        root = self._scratch(tmp_path, """
            import time

            def now():
                return time.time()
        """)
        baseline = root / "lint-baseline.json"
        assert main(["lint", str(root / "src" / "repro"),
                     "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        assert baseline.is_file()
        assert main(["lint", str(root / "src" / "repro"),
                     "--baseline", str(baseline)]) == 0
        assert "1 baseline-suppressed" in capsys.readouterr().out


class TestRuleSelection:
    def test_only_runs_requested_rule(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("")
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "kernel.py").write_text(
            "import time\n\n\nclass Fresh:\n"
            "    def now(self):\n        return time.time()\n")
        assert main(["lint", str(pkg), "--no-baseline",
                     "--rule", "slots"]) == 1
        out = capsys.readouterr().out
        assert "slots-required" in out
        assert "no-wallclock" not in out


class TestExitCodes:
    """The contract CI scripts rely on: 0 clean, 1 findings, 2 usage or
    internal analyzer error."""

    def _violating_tree(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("")
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "kernel.py").write_text(
            "import time\n\n\ndef now():\n    return time.time()\n")
        return tmp_path

    def test_findings_exit_one(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        assert main(["lint", str(root / "src" / "repro"),
                     "--no-baseline"]) == 1
        capsys.readouterr()

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        code = main(["lint", str(root / "src" / "repro"),
                     "--no-baseline", "--rule", "no-such-rule"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown rule" in captured.err
        assert "no-such-rule" in captured.err

    def test_internal_error_exits_two(self, tmp_path, capsys):
        """A crash inside the analyzer (here: an unreadable baseline)
        must be distinguishable from 'findings present'."""
        root = self._violating_tree(tmp_path)
        bad = root / "lint-baseline.json"
        bad.write_text("{not json")
        code = main(["lint", str(root / "src" / "repro"),
                     "--baseline", str(bad)])
        captured = capsys.readouterr()
        assert code == 2
        assert "internal analyzer error" in captured.err


class TestJsonContract:
    """Pin the ``repro-lint/1`` payload: downstream tooling parses it."""

    def test_payload_keys_and_finding_shape(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("")
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "kernel.py").write_text(
            "import time\n\n\ndef now():\n    return time.time()\n")
        assert main(["lint", str(pkg), "--no-baseline", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-lint/1"
        assert set(payload) >= {"schema", "files_checked", "findings",
                                "suppressed", "metadata_access", "tables"}
        (finding,) = [f for f in payload["findings"]
                      if f["rule"] == "no-wallclock"]
        assert set(finding) >= {"rule", "path", "line", "symbol",
                                "message", "severity"}
        assert finding["path"].endswith("kernel.py")
        assert isinstance(finding["line"], int)

    def test_flow_rules_are_registered(self):
        from repro.analysis import available_rules

        assert {"flow-unhandled-message", "flow-send-without-timeout",
                "flow-durable-order",
                "flow-meta-race"} <= set(available_rules())


class TestGraphExport:
    def test_graph_flag_writes_versioned_document(self, tmp_path, capsys):
        out = tmp_path / "protocol-graph.json"
        assert main(["lint", "--graph", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert document["schema"] == "repro-protocol-graph/1"
        assert set(document["arches"]) == {"baseline", "offload"}


class TestBaselineStability:
    def test_update_baseline_is_sorted_and_stable(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("")
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "b.py").write_text(
            "import time\n\n\ndef later():\n    return time.time()\n")
        (pkg / "a.py").write_text(
            "import time\n\n\ndef earlier():\n    return time.time()\n")
        baseline = tmp_path / "lint-baseline.json"
        assert main(["lint", str(pkg), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        first = baseline.read_text()
        payload = json.loads(first)
        keys = [(s["rule"], s["path"], s["symbol"])
                for s in payload["suppressions"]]
        assert keys == sorted(keys), "baseline must be written sorted"
        assert main(["lint", str(pkg), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        assert baseline.read_text() == first, \
            "re-updating an unchanged tree must be byte-stable"

    def test_shipped_baseline_is_empty(self):
        payload = json.loads((ROOT / "lint-baseline.json").read_text())
        assert payload["schema"] == "repro-lint-baseline/1"
        assert payload["suppressions"] == []
