"""End-to-end ``repro lint``: CLI behavior, JSON payload, import
hygiene, and the acceptance gates the CI job relies on."""

import ast
import json
import os
import subprocess
import sys
import textwrap

from repro.analysis import find_project_root
from repro.cli import main

ROOT = find_project_root()


def _run_lint(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd or ROOT, env=env, capture_output=True, text=True)


class TestRepoIsClean:
    def test_lint_exits_zero_on_tree(self):
        proc = _run_lint()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_json_payload_shape(self):
        proc = _run_lint("--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["schema"] == "repro-lint/1"
        assert payload["findings"] == []
        assert payload["files_checked"] > 50

    def test_access_table_covers_every_engine_handler(self):
        proc = _run_lint("--json")
        payload = json.loads(proc.stdout)
        engines = payload["metadata_access"]["engines"]
        for engine_name, rel in (
                ("BaselineEngine", "src/repro/core/baseline/engine.py"),
                ("OffloadEngine", "src/repro/core/offload/engine.py")):
            tree = ast.parse((ROOT / rel).read_text())
            class_node = next(
                node for node in tree.body
                if isinstance(node, ast.ClassDef)
                and node.name == engine_name)
            methods = {stmt.name for stmt in class_node.body
                       if isinstance(stmt, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))}
            assert set(engines[engine_name]) == methods
            # The protocol's commit points must be visible in the table.
            writers = {h for h, d in engines[engine_name].items()
                       if "glb_durable_ts" in d["writes"]}
            assert writers, f"no glb_durable_ts writers in {engine_name}"

    def test_lint_does_not_import_simulator(self):
        code = textwrap.dedent("""
            import sys
            import repro.cli
            import repro.analysis
            bad = [m for m in sys.modules
                   if m.startswith(('repro.sim', 'repro.core',
                                    'repro.hw', 'repro.api'))]
            sys.exit(1 if bad else 0)
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


class TestSeededViolation:
    def _scratch(self, tmp_path, source):
        (tmp_path / "pyproject.toml").write_text("")
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "kernel.py").write_text(textwrap.dedent(source))
        return tmp_path

    def test_violation_fails_with_rule_and_line(self, tmp_path, capsys):
        root = self._scratch(tmp_path, """
            import time

            def now():
                return time.time()
        """)
        code = main(["lint", str(root / "src" / "repro"),
                     "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no-wallclock" in out
        assert "kernel.py:5" in out

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        root = self._scratch(tmp_path, """
            import time

            def now():
                return time.time()
        """)
        baseline = root / "lint-baseline.json"
        assert main(["lint", str(root / "src" / "repro"),
                     "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        assert baseline.is_file()
        assert main(["lint", str(root / "src" / "repro"),
                     "--baseline", str(baseline)]) == 0
        assert "1 baseline-suppressed" in capsys.readouterr().out


class TestRuleSelection:
    def test_only_runs_requested_rule(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("")
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "kernel.py").write_text(
            "import time\n\n\nclass Fresh:\n"
            "    def now(self):\n        return time.time()\n")
        assert main(["lint", str(pkg), "--no-baseline",
                     "--rule", "slots"]) == 1
        out = capsys.readouterr().out
        assert "slots-required" in out
        assert "no-wallclock" not in out
