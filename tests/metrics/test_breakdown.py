"""Tests for the Fig. 4 communication/computation accounting."""

import pytest

from repro.metrics.breakdown import Breakdown, write_breakdown
from repro.metrics.stats import Metrics


class TestBreakdown:
    def test_computation_is_remainder(self):
        b = Breakdown(total=10e-6, communication=7e-6)
        assert b.computation == pytest.approx(3e-6)
        assert b.communication_fraction == pytest.approx(0.7)

    def test_zero_total(self):
        b = Breakdown(total=0.0, communication=0.0)
        assert b.communication_fraction == 0.0

    def test_str_mentions_fraction(self):
        assert "70%" in str(Breakdown(total=10e-6, communication=7e-6))


class TestWriteBreakdown:
    def test_follower_handling_subtracted(self):
        """comm = (last ACK - first INV deposit) - avg follower handling
        (the paper's §IV accounting)."""
        metrics = Metrics()
        metrics.record_write(10e-6)
        metrics.record_comm_span(1, inv_deposit=0.0, last_ack=8e-6)
        metrics.record_follower_handling(1, 2e-6)
        metrics.record_follower_handling(1, 4e-6)
        breakdown = write_breakdown(metrics)
        # span 8us - avg handling 3us = 5us of communication
        assert breakdown.communication == pytest.approx(5e-6)
        assert breakdown.total == pytest.approx(10e-6)

    def test_clamped_to_total(self):
        metrics = Metrics()
        metrics.record_write(5e-6)
        metrics.record_comm_span(1, inv_deposit=0.0, last_ack=50e-6)
        breakdown = write_breakdown(metrics)
        assert breakdown.communication == breakdown.total

    def test_no_spans(self):
        metrics = Metrics()
        metrics.record_write(5e-6)
        assert write_breakdown(metrics).communication == 0.0

    def test_negative_span_floored(self):
        metrics = Metrics()
        metrics.record_write(5e-6)
        metrics.record_comm_span(1, inv_deposit=1e-6, last_ack=2e-6)
        metrics.record_follower_handling(1, 9e-6)
        assert write_breakdown(metrics).communication == 0.0
