"""Tests for latency statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import (EMPTY_SUMMARY, LatencyRecorder, Metrics,
                                 percentile)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([3.0], 0.99) == 3.0

    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        data = sorted([5.0, 1.0, 3.0])
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 5.0

    @settings(max_examples=50, deadline=None)
    @given(samples=st.lists(st.floats(min_value=0, max_value=1e6,
                                      allow_nan=False), min_size=1),
           fraction=st.floats(min_value=0, max_value=1))
    def test_within_bounds(self, samples, fraction):
        data = sorted(samples)
        value = percentile(data, fraction)
        assert data[0] <= value <= data[-1]

    @settings(max_examples=30, deadline=None)
    @given(samples=st.lists(st.floats(min_value=0, max_value=1e6,
                                      allow_nan=False), min_size=2))
    def test_monotone_in_fraction(self, samples):
        data = sorted(samples)
        assert percentile(data, 0.25) <= percentile(data, 0.75)


class TestRecorder:
    def test_empty_summary(self):
        assert LatencyRecorder().summary() == EMPTY_SUMMARY

    def test_summary_fields(self):
        rec = LatencyRecorder()
        for value in (1e-6, 2e-6, 3e-6, 10e-6):
            rec.add(value)
        summary = rec.summary()
        assert summary.count == 4
        assert summary.mean == pytest.approx(4e-6)
        assert summary.minimum == 1e-6
        assert summary.maximum == 10e-6
        assert summary.mean_us == pytest.approx(4.0)

    def test_samples_copy(self):
        rec = LatencyRecorder()
        rec.add(1.0)
        samples = rec.samples
        samples.append(2.0)
        assert rec.count == 1


class TestMetrics:
    def test_throughput(self):
        metrics = Metrics()
        metrics.started_at = 0.0
        metrics.finished_at = 2.0
        for _ in range(10):
            metrics.record_write(1e-6)
        for _ in range(6):
            metrics.record_read(1e-6)
        assert metrics.write_throughput() == pytest.approx(5.0)
        assert metrics.read_throughput() == pytest.approx(3.0)
        assert metrics.throughput() == pytest.approx(8.0)

    def test_zero_duration_throughput(self):
        assert Metrics().throughput() == 0.0

    def test_counters(self):
        metrics = Metrics()
        metrics.record_write(1.0)
        metrics.record_read(1.0)
        assert metrics.counters.writes_completed == 1
        assert metrics.counters.reads_completed == 1


class TestToDict:
    def test_round_trips_through_json(self):
        import json
        metrics = Metrics()
        metrics.started_at, metrics.finished_at = 0.0, 1.0
        metrics.record_write(2e-6)
        metrics.record_read(1e-6)
        payload = json.loads(json.dumps(metrics.to_dict()))
        assert payload["write_latency"]["count"] == 1
        assert payload["write_throughput_ops"] == 1.0
        assert payload["counters"]["reads_completed"] == 1
