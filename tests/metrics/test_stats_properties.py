"""Property-based tests for the statistics kernels.

Two layers share one percentile vocabulary: the exact
:func:`repro.metrics.stats.percentile` (LatencyRecorder summaries) and
the bucketed :meth:`repro.obs.LogHistogram.percentile_estimate`.  The
properties pinned here are the ones the observability docs promise:

* ``percentile`` is clamped (no negative-rank indexing from the wrong
  end, no ``IndexError`` past 1), monotone in the fraction, and always
  inside ``[min, max]`` of the samples;
* a :class:`LogHistogram` estimate is within the histogram's growth
  factor of the *exact* sample at the same nearest rank — the
  documented accuracy contract of the log-bucketed representation.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.metrics.stats import LatencyRecorder, percentile  # noqa: E402
from repro.obs import LogHistogram  # noqa: E402

#: Latency-shaped samples: positive, spanning ns..s like the simulator's.
latencies = st.floats(min_value=1e-9, max_value=10.0,
                      allow_nan=False, allow_infinity=False)
sample_lists = st.lists(latencies, min_size=1, max_size=200)
fractions = st.floats(min_value=-0.5, max_value=1.5,
                      allow_nan=False, allow_infinity=False)


class TestPercentileProperties:
    @given(samples=sample_lists, fraction=fractions)
    def test_result_is_within_the_sample_range(self, samples, fraction):
        ordered = sorted(samples)
        value = percentile(ordered, fraction)
        assert ordered[0] <= value <= ordered[-1]

    @given(samples=sample_lists,
           fraction_pairs=st.tuples(fractions, fractions))
    def test_monotone_in_the_fraction(self, samples, fraction_pairs):
        low, high = sorted(fraction_pairs)
        ordered = sorted(samples)
        assert percentile(ordered, low) <= percentile(ordered, high)

    @given(samples=sample_lists)
    def test_extremes_are_exact(self, samples):
        ordered = sorted(samples)
        assert percentile(ordered, 0.0) == ordered[0]
        assert percentile(ordered, 1.0) == ordered[-1]
        # The clamp: out-of-range fractions answer with the extremes
        # (the old code indexed from the wrong end / raised IndexError).
        assert percentile(ordered, -3.0) == ordered[0]
        assert percentile(ordered, 7.0) == ordered[-1]

    @given(value=latencies, count=st.integers(min_value=1, max_value=9),
           fraction=fractions)
    def test_constant_samples_are_a_fixed_point(self, value, count,
                                                fraction):
        assert percentile([value] * count, fraction) == value

    def test_empty_samples_answer_zero(self):
        assert percentile([], 0.5) == 0.0

    @given(samples=sample_lists)
    def test_summary_orders_its_percentiles(self, samples):
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.add(sample)
        summary = recorder.summary()
        assert summary.count == len(samples)
        assert summary.minimum <= summary.p50 <= summary.p95 \
            <= summary.p99 <= summary.maximum
        # The mean is a float sum/divide, so give it 1-ULP-scale slack:
        # sum([x, x, x]) / 3 can land just outside [x, x].
        slack = 1e-12 * max(abs(summary.minimum), abs(summary.maximum))
        assert summary.minimum - slack <= summary.mean \
            <= summary.maximum + slack


class TestLogHistogramProperties:
    @given(samples=sample_lists,
           fraction=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=200)
    def test_estimate_within_growth_of_nearest_rank(self, samples,
                                                    fraction):
        """The documented accuracy bound: the estimate and the exact
        nearest-rank sample lie in (or at the edge of) the same
        geometric bucket, so their ratio is within the growth factor."""
        histogram = LogHistogram()
        for sample in samples:
            histogram.add(sample)
        ordered = sorted(samples)
        rank = max(1, math.ceil(fraction * len(ordered)))
        exact = ordered[rank - 1]
        estimate = histogram.percentile_estimate(fraction)
        growth = histogram.growth * (1 + 1e-12)  # float-division slack
        assert exact / growth <= estimate <= exact * growth

    @given(samples=sample_lists)
    def test_exact_fields_match_the_samples(self, samples):
        histogram = LogHistogram()
        for sample in samples:
            histogram.add(sample)
        assert histogram.count == len(samples)
        assert histogram.minimum == min(samples)
        assert histogram.maximum == max(samples)
        assert histogram.total == pytest.approx(math.fsum(samples))

    @given(samples=sample_lists, fraction=fractions)
    def test_estimate_is_inside_the_observed_range(self, samples,
                                                   fraction):
        histogram = LogHistogram()
        for sample in samples:
            histogram.add(sample)
        estimate = histogram.percentile_estimate(fraction)
        assert histogram.minimum <= estimate <= histogram.maximum

    @given(samples=sample_lists)
    def test_bucket_count_conservation(self, samples):
        histogram = LogHistogram()
        for sample in samples:
            histogram.add(sample)
        assert sum(histogram.buckets.values()) == len(samples)

    @given(value=latencies)
    def test_every_sample_is_inside_its_bucket_bounds(self, value):
        histogram = LogHistogram()
        index = histogram.bucket_index(value)
        low, high = histogram.bucket_bounds(index)
        slack = 1 + 1e-9  # log/pow round-trip tolerance at the edges
        assert low / slack <= value <= high * slack
