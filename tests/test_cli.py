"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListing:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "<Lin, Synch>" in out and out.count("\n") == 5

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "MINOS-O" in out and "offload, batching, broadcast" in out


class TestVerify:
    def test_verify_passes(self, capsys):
        code = main(["verify", "--model", "event", "--arch", "MINOS-B"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_offload(self, capsys):
        code = main(["verify", "--model", "synch", "--arch", "MINOS-O",
                     "--writes", "1"])
        assert code == 0


class TestExperiment:
    def test_experiment_prints_metrics(self, capsys):
        code = main(["experiment", "--nodes", "3", "--records", "30",
                     "--requests", "10", "--clients", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "write latency" in out and "breakdown" in out

    def test_unknown_arch_fails_loudly(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            main(["experiment", "--arch", "MINOS-X"])


class TestTrace:
    def test_trace_timeline(self, capsys):
        code = main(["trace", "--nodes", "2", "--arch", "MINOS-O"])
        assert code == 0
        out = capsys.readouterr().out
        assert "write:start" in out
        assert "node 1" in out

    def test_trace_export_writes_valid_chrome_trace(self, capsys,
                                                    tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "write.json"
        jsonl_path = tmp_path / "write.jsonl"
        code = main(["trace", "--nodes", "3", "--arch", "MINOS-O",
                     "--export", str(trace_path),
                     "--jsonl", str(jsonl_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote {trace_path}" in out
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        write_events = [e for e in payload["traceEvents"]
                        if e.get("ph") == "X" and "op," in e.get("cat", "")]
        assert write_events, "export contains no operation spans"
        assert jsonl_path.is_file()
        for line in jsonl_path.read_text().splitlines():
            json.loads(line)


class TestProfile:
    def test_profile_prints_phase_breakdown(self, capsys):
        code = main(["profile", "--nodes", "3", "--records", "30",
                     "--requests", "10", "--clients", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "ack_wait" in out and "inv_fanout" in out

    def test_profile_json_and_export(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "profile.json"
        code = main(["profile", "--nodes", "3", "--records", "30",
                     "--requests", "10", "--clients", "1",
                     "--arch", "MINOS-O", "--json",
                     "--export", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[:out.rindex("}") + 1])
        assert payload["spans"] > 0
        assert "ack_wait" in payload["phases"]
        assert trace_path.is_file()


class TestFigure:
    def test_fig13_smoke(self, capsys):
        code = main(["figure", "fig13", "--scale", "smoke"])
        assert code == 0
        assert "unlimited" in capsys.readouterr().out

    def test_tab1(self, capsys):
        code = main(["figure", "tab1"])
        assert code == 0
        assert capsys.readouterr().out.count("PASS") == 10

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestSweep:
    def test_sweep_command(self, capsys):
        code = main(["sweep", "config=MINOS-B,MINOS-O", "--records", "20",
                     "--requests", "8", "--clients", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MINOS-B" in out and "MINOS-O" in out and "wlat_us" in out


class TestReport:
    def test_report_assembles_tables(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig99_demo.txt").write_text("col\n---\n42\n")
        out_file = tmp_path / "report.md"
        code = main(["report", "--results-dir", str(results),
                     "--output", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert "## fig99_demo" in text and "42" in text

    def test_report_without_results(self, tmp_path):
        assert main(["report", "--results-dir",
                     str(tmp_path / "nope")]) == 1


class TestJsonExport:
    def test_experiment_json(self, capsys):
        import json
        code = main(["experiment", "--nodes", "2", "--records", "20",
                     "--requests", "8", "--clients", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"].startswith("MINOS-B")
        assert payload["write_latency"]["count"] > 0
        assert payload["counters"]["writes_completed"] > 0
        assert 0 <= payload["communication_fraction"] <= 1
