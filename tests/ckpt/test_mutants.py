"""Seeded checkpoint bugs the rollback rules must catch (mutant gate).

Same philosophy as ``tests/check/test_runner.py`` and
``tests/analysis/test_flow_mutants.py``: the checker is only trusted
because deliberately planted bugs fail it.  Two mutants from the PR's
acceptance list:

* a checkpoint fence that silently *drops an acked Synch write* from
  the image while still truncating the log — the write is gone from
  every surviving replica, so a whole-cluster rollback must trip the
  ``rollback-floor`` rule;
* a truncation that races a pending ``[PERSIST]sc`` — scoped entries
  are fenced out of the image, so a completed scope persist loses its
  writes and the Scope closure floor must catch it.

Both must produce a shrunk counterexample of at most 10 events.
"""

from repro import MINOS_B, run_check
from repro.ckpt import CheckpointConfig
from repro.hw.params import us


def plant_synch_dropping_checkpoint(cluster):
    """Every fence truncates normally but evicts key ``k1`` from the
    checkpoint image: an acked Synch write whose only durable copy was
    the image is silently lost."""
    for node in cluster.nodes:
        log = node.kv.log
        real_checkpoint = log.checkpoint

        def corrupt(log=log, real=real_checkpoint):
            truncated = real()
            log._checkpoint.pop("k1", None)
            return truncated

        log.checkpoint = corrupt


def plant_scope_racing_checkpoint(cluster):
    """Every fence truncates as if the pending ``[PERSIST]sc`` did not
    exist: scoped entries are fenced out of the image, so a scope the
    client was promised durable does not survive the rollback."""
    for node in cluster.nodes:
        log = node.kv.log
        real_checkpoint = log.checkpoint

        def corrupt(log=log, real=real_checkpoint):
            truncated = real()
            for key, entry in list(log._checkpoint.items()):
                if entry.scope is not None:
                    del log._checkpoint[key]
            return truncated

        log.checkpoint = corrupt


CHECK = dict(config=MINOS_B, nodes=3, ops_per_client=10, seeds=2,
             crash_trials=2, victims=3, max_time=us(60_000),
             checkpoints=CheckpointConfig(watermark=4))


class TestCheckpointMutants:
    def test_synch_acked_write_dropped_by_fence_is_caught(self):
        report = run_check(model="synch",
                           setup=plant_synch_dropping_checkpoint, **CHECK)
        assert not report.ok, \
            "a checkpoint that loses an acked Synch write went unnoticed"
        counterexample = report.counterexample
        assert counterexample is not None
        assert counterexample.kind == "durability"
        assert "rollback-floor" in counterexample.detail
        assert counterexample.key == "k1"
        # Acceptance criterion: the shrunk counterexample is tiny.
        assert 1 <= len(counterexample.events) <= 10
        # The evidence is the acked write the rollback lost.
        assert any(e["kind"] == "write" for e in counterexample.events)

    def test_truncation_racing_persist_sc_is_caught(self):
        report = run_check(model="scope",
                           setup=plant_scope_racing_checkpoint, **CHECK)
        assert not report.ok, \
            "a truncation racing [PERSIST]sc went unnoticed"
        counterexample = report.counterexample
        assert counterexample is not None
        assert counterexample.kind == "durability"
        assert "rollback-floor" in counterexample.detail
        assert 1 <= len(counterexample.events) <= 10
        # The Scope floor's evidence pairs the lost write with the
        # [PERSIST]sc that promised it durable.
        kinds = {e["kind"] for e in counterexample.events}
        assert "persist" in kinds

    def test_clean_checkpoints_pass_the_same_gate(self):
        """Control: the identical exploration with honest fences is
        green — the mutants above fail because of the planted bug, not
        because the gate is trigger-happy."""
        report = run_check(model="synch", **CHECK)
        assert report.ok, (report.counterexample.detail
                           if report.counterexample else report.to_dict())
