"""The unbounded-log fix, end to end (regression).

Before checkpointing, ``NvmLog`` grew without bound: nothing ever
truncated it, so a long chaos soak left every node holding its entire
write history in "NVM".  The CIC watermark is the fix — once the live
log crosses it, a local fence folds the prefix into the checkpoint
image and truncates.  This regression pins the bound: a chaos soak
with a watermark keeps every node's *peak* log length within a small
slack of the watermark, while the identical soak without checkpoints
blows straight past it.
"""

from repro import LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster
from repro.ckpt import CheckpointConfig
from repro.faults import FaultPlan, run_chaos
from repro.hw.params import DEFAULT_MACHINE
from repro.workloads.ycsb import YcsbWorkload

WATERMARK = 8
#: A fence runs after the append that crosses the watermark, so a
#: burst of in-flight appends can overshoot by the amount the fabric
#: can land between the crossing and the fence.
SLACK = 4


def soak(config, checkpoints=None):
    cluster = MinosCluster(model=LIN_SYNCH, config=config,
                           params=DEFAULT_MACHINE.with_nodes(3))
    plan = FaultPlan.lossy(seed=23, drop=0.005, delay=0.05)
    workload = YcsbWorkload(records=10, requests_per_client=40,
                            write_fraction=0.9, seed=23)
    result = run_chaos(cluster, plan, workload, clients_per_node=1,
                       checkpoints=checkpoints)
    assert result.completed
    assert result.violations == [], result.violations
    return result, cluster


class TestBoundedLog:
    def test_watermark_bounds_peak_log_length_on_chaos_soak(self):
        for config in (MINOS_B, MINOS_O):
            result, cluster = soak(
                config, CheckpointConfig(watermark=WATERMARK))
            assert result.peak_log_length <= WATERMARK + SLACK, (
                f"{config.name}: peak live log "
                f"{result.peak_log_length} ran past the "
                f"{WATERMARK}-entry watermark")
            for node in cluster.nodes:
                assert node.kv.log.peak_length <= WATERMARK + SLACK

    def test_no_checkpoints_is_unbounded(self):
        """Control with teeth: the same soak without checkpointing
        accumulates far more than the watermark on every node — the
        bound above is the fix, not a property of the workload."""
        result, cluster = soak(MINOS_B)
        assert result.peak_log_length > WATERMARK + SLACK
        for node in cluster.nodes:
            assert node.kv.log.truncated_total == 0
            assert len(node.kv.log) == node.kv.log.peak_length
