"""Coordinated checkpoint rounds and CIC truncation (repro.ckpt).

Covers the manager's two mechanisms over both architectures: barrier
rounds (CKPT/CKPT_ACK over the protocol fabric, all-node fences,
complete :class:`CheckpointLine` records) and communication-induced
checkpoints driven by the log-size watermark — plus the configuration
guard rails and the observability counters the unbounded-log fix
promised (``log_truncated_entries`` / ``log_peak_length``).
"""

import pytest

from repro import LIN_SCOPE, LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster
from repro.ckpt import CheckpointConfig, CheckpointManager
from repro.errors import ConfigError
from repro.hw.params import DEFAULT_MACHINE, us
from repro.workloads.ycsb import YcsbWorkload

ARCHES = [MINOS_B, MINOS_O]


def make_cluster(config, model=LIN_SYNCH, nodes=3):
    return MinosCluster(model=model, config=config,
                        params=DEFAULT_MACHINE.with_nodes(nodes))


def run_small_workload(cluster, requests=12, seed=3):
    workload = YcsbWorkload(records=10, requests_per_client=requests,
                            write_fraction=0.8, seed=seed)
    return cluster.run_workload(workload, clients_per_node=1)


class TestConfig:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigError):
            CheckpointConfig(interval=0)
        with pytest.raises(ConfigError):
            CheckpointConfig(interval=-1.0)

    def test_rejects_negative_watermark(self):
        with pytest.raises(ConfigError):
            CheckpointConfig(watermark=-1)

    def test_enable_rejects_double_install(self):
        cluster = make_cluster(MINOS_B)
        cluster.enable_checkpoints(CheckpointConfig())
        with pytest.raises(ConfigError):
            cluster.enable_checkpoints(CheckpointConfig())

    def test_enable_rejects_out_of_range_coordinator(self):
        cluster = make_cluster(MINOS_B)
        with pytest.raises(ConfigError):
            cluster.enable_checkpoints(CheckpointConfig(coordinator=7))

    def test_enable_attaches_manager_to_every_engine(self):
        cluster = make_cluster(MINOS_B)
        manager = cluster.enable_checkpoints(CheckpointConfig())
        assert isinstance(manager, CheckpointManager)
        assert cluster.checkpoints is manager
        assert all(node.engine.ckpt is manager for node in cluster.nodes)


class TestCoordinatedRounds:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_on_demand_round_fences_every_node(self, config):
        cluster = make_cluster(config)
        manager = cluster.enable_checkpoints(CheckpointConfig())
        run_small_workload(cluster)
        live_before = {node.node_id: len(node.kv.log)
                       for node in cluster.nodes}
        assert any(live_before.values()), "workload persisted nothing"
        cluster.sim.run_process(manager.checkpoint_now(),
                                name="test.ckpt.round")
        assert manager.rounds_started == 1
        assert manager.rounds_completed == 1
        line = manager.lines[-1]
        assert line.complete
        assert sorted(line.serials) == [n.node_id for n in cluster.nodes]
        assert line.acked == [n.node_id for n in cluster.nodes
                              if n.node_id != manager.config.coordinator]
        # The fence truncated every node's live log into the image.
        for node in cluster.nodes:
            assert len(node.kv.log) == 0
            assert node.kv.log.truncated_total >= live_before[node.node_id]

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_checkpoint_preserves_durable_state(self, config):
        cluster = make_cluster(config)
        manager = cluster.enable_checkpoints(CheckpointConfig())
        run_small_workload(cluster)
        before = {node.node_id: {k: (e.ts, e.value) for k, e in
                                 node.kv.log.durable_snapshot().items()}
                  for node in cluster.nodes}
        cluster.sim.run_process(manager.checkpoint_now(),
                                name="test.ckpt.round")
        after = {node.node_id: {k: (e.ts, e.value) for k, e in
                                node.kv.log.durable_snapshot().items()}
                 for node in cluster.nodes}
        assert after == before, \
            "truncation must be invisible to the surviving durable state"

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_periodic_driver_runs_rounds_under_load(self, config):
        cluster = make_cluster(config)
        manager = cluster.enable_checkpoints(
            CheckpointConfig(interval=us(150)))
        cluster.load_records([(f"k{i}", "v0") for i in range(6)])
        sim = cluster.sim

        def writer(node_id):
            for i in range(12):
                yield from cluster.nodes[node_id].engine.client_write(
                    f"k{i % 6}", f"n{node_id}i{i}")

        drivers = [sim.spawn(writer(n), name=f"w{n}") for n in (0, 1)]
        # The periodic driver never terminates: sliced advance.
        while not all(d.triggered for d in drivers) and sim.now < us(50_000):
            sim.run(until=sim.now + us(1_000))
        sim.run(until=sim.now + us(2_000))
        assert all(d.triggered for d in drivers)
        assert manager.rounds_completed >= 2
        assert all(line.complete for line in manager.lines
                   if line.round_id < manager.lines[-1].round_id)

    def test_round_skipped_while_coordinator_down(self):
        cluster = make_cluster(MINOS_B)
        manager = cluster.enable_checkpoints(CheckpointConfig())
        run_small_workload(cluster)
        cluster.crash(manager.config.coordinator)
        cluster.sim.run_process(manager.checkpoint_now(),
                                name="test.ckpt.skip")
        assert manager.rounds_started == 0
        assert manager.lines == []


class TestCic:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_watermark_triggers_local_truncation(self, config):
        cluster = make_cluster(config)
        manager = cluster.enable_checkpoints(CheckpointConfig(watermark=5))
        run_small_workload(cluster, requests=20)
        assert manager.cic_checkpoints > 0
        assert manager.rounds_started == 0, "CIC must not send messages"
        for node in cluster.nodes:
            if node.kv.log.truncated_total:
                assert node.kv.log.peak_length <= 5 + 2, \
                    "CIC let the live log run far past the watermark"

    def test_watermark_zero_never_fences(self):
        cluster = make_cluster(MINOS_B)
        manager = cluster.enable_checkpoints(CheckpointConfig(watermark=0))
        run_small_workload(cluster)
        assert manager.cic_checkpoints == 0
        assert all(node.kv.log.checkpoints_taken == 0
                   for node in cluster.nodes)


class TestScopeQuiesce:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_scope_model_rounds_complete(self, config):
        """Under <Lin, Scope> the fence must drain open scope
        dependencies first; the round still completes and truncates."""
        cluster = make_cluster(config, model=LIN_SCOPE)
        manager = cluster.enable_checkpoints(CheckpointConfig())
        workload = YcsbWorkload(records=10, requests_per_client=10,
                                write_fraction=0.8, seed=5,
                                persist_every=3)
        cluster.run_workload(workload, clients_per_node=1)
        cluster.sim.run_process(manager.checkpoint_now(),
                                name="test.ckpt.scope")
        assert manager.rounds_completed == 1
        assert all(len(node.kv.log) == 0 for node in cluster.nodes)


class TestObservability:
    def test_fences_emit_truncation_counters_and_gauges(self):
        cluster = make_cluster(MINOS_B)
        manager = cluster.enable_checkpoints(CheckpointConfig(watermark=4))
        obs = cluster.attach_obs()
        run_small_workload(cluster, requests=16)
        cluster.sim.run_process(manager.checkpoint_now(),
                                name="test.ckpt.obs")
        truncated = {node: reg.counter("log_truncated_entries")
                     for node, reg in obs.registries().items()}
        assert any(truncated.values()), \
            "no node reported log_truncated_entries"
        total = sum(node.kv.log.truncated_total for node in cluster.nodes)
        assert sum(truncated.values()) == total
        for node, registry in obs.registries().items():
            if truncated[node]:
                assert registry.gauge_samples("log_peak_length")
                assert registry.gauge_samples("log_length")
        assert obs.instants_for("checkpoint")
