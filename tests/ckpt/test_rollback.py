"""Rollback recovery acceptance: k-node and whole-cluster crashes.

The PR's headline criterion: a whole-cluster crash at an arbitrary
explored crash point must restore to a state that passes the
checkpoint-aware durable-linearizability rules for all five persistency
models on both architectures — and a k-node disaster under an active
fault plan must roll back and converge while the surviving clients stay
under load.

The hypothesis property pins checkpoint-line *consistency*: after a
coordinated round on a quiesced cluster, every node fenced the same
per-key state, so the restore line equals each node's own image.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (LIN_SCOPE, LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster,
                   run_check)
from repro.check import restore_line
from repro.ckpt import CheckpointConfig
from repro.faults import DisasterSpec, FaultPlan
from repro.hw.params import DEFAULT_MACHINE, us
from repro.workloads.ycsb import YcsbWorkload

ARCHES = [MINOS_B, MINOS_O]
MODELS = ["synch", "strict", "renf", "event", "scope"]


class TestWholeClusterRollback:
    """run_check in disaster mode with victims == nodes: every node
    crashes at the explored crash point, rollback recovery restores the
    cluster from the surviving checkpoint images + log tails, and the
    history must pass check_rollback + linearizability."""

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    @pytest.mark.parametrize("model", MODELS)
    def test_restores_to_legal_state(self, model, config):
        report = run_check(model=model, config=config, nodes=3,
                           ops_per_client=6, seeds=1, crash_trials=1,
                           victims=3,
                           checkpoints=CheckpointConfig(watermark=6),
                           max_time=us(30_000))
        crashed = [run for run in report.runs if run.crash_at is not None]
        assert crashed, "no whole-cluster crash was explored"
        assert report.ok, (report.counterexample.detail
                           if report.counterexample else report.to_dict())
        assert all(run.durability_ok and run.linearizable
                   for run in report.runs)

    def test_k_node_subset_rollback(self):
        """victims strictly between 1 and nodes exercises the mixed
        path: crashed nodes rebuilt, survivors topped up to the line."""
        report = run_check(model="synch", config=MINOS_B, nodes=4,
                           ops_per_client=6, seeds=1, crash_trials=1,
                           victims=2,
                           checkpoints=CheckpointConfig(watermark=6),
                           max_time=us(30_000))
        assert report.ok, (report.counterexample.detail
                           if report.counterexample else report.to_dict())

    def test_rejects_more_victims_than_nodes(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            run_check(nodes=3, victims=4)


class TestDisasterUnderFaultPlan:
    """k-node rollback with an active FaultPlan: loss + delay keep the
    retransmit machinery busy while the disaster hits, and the restored
    cluster must still pass the quiescent invariant suite."""

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    @pytest.mark.parametrize("model", [LIN_SYNCH, LIN_SCOPE],
                             ids=lambda m: m.name)
    def test_rollback_under_loss(self, config, model):
        from repro.faults import run_chaos

        plan = FaultPlan.lossy(seed=11, drop=0.01, delay=0.05)
        cluster = MinosCluster(model=model, config=config,
                               params=DEFAULT_MACHINE.with_nodes(5))
        workload = YcsbWorkload(records=12, requests_per_client=12,
                                write_fraction=0.8, seed=11)
        result = run_chaos(
            cluster, plan, workload, clients_per_node=1,
            checkpoints=CheckpointConfig(interval=us(400), watermark=30),
            disaster=DisasterSpec(at=us(500), victims=2,
                                  down_for=us(400)))
        assert result.completed, "surviving clients stalled"
        assert result.violations == [], result.violations
        assert result.restored == 2
        assert result.checks == "quiescent"
        assert result.checkpoint_rounds > 0


class TestCheckpointLineConsistency:
    """Property (hypothesis over seeds and models): a coordinated round
    on a quiesced cluster fences identical per-key durable state on
    every node — the restore line equals each node's own image, and
    every live log is empty."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           model=st.sampled_from(MODELS),
           arch=st.sampled_from([0, 1]))
    def test_round_on_quiesced_cluster_is_consistent(self, seed, model,
                                                     arch):
        from repro.core.model import model_by_name

        config = ARCHES[arch]
        cluster = MinosCluster(model=model_by_name(model),
                               config=config,
                               params=DEFAULT_MACHINE.with_nodes(3))
        manager = cluster.enable_checkpoints(CheckpointConfig())
        workload = YcsbWorkload(records=8, requests_per_client=6,
                                write_fraction=0.8, seed=seed)
        cluster.run_workload(workload, clients_per_node=1)
        cluster.sim.run_process(manager.checkpoint_now(),
                                name="prop.ckpt.round")
        assert manager.rounds_completed == 1
        line = manager.lines[-1]
        assert line.complete
        assert sorted(line.serials) == [0, 1, 2]
        snapshots = {
            node.node_id: {key: (entry.ts, entry.value) for key, entry
                           in node.kv.log.durable_snapshot().items()}
            for node in cluster.nodes}
        folded = restore_line(snapshots)
        for node_id, snapshot in snapshots.items():
            assert snapshot == folded, \
                f"node {node_id} fenced state diverging from the line"
        assert all(len(node.kv.log) == 0 for node in cluster.nodes)
