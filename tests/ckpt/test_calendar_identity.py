"""Checkpointing off is calendar-transparent (acceptance criterion).

The ``ckpt`` hook follows the attachment-point contract of the tracer /
obs / robustness hooks: ``None`` (the default) keeps every site at one
attribute check, so a run that never enables checkpointing must produce
a byte-identical event calendar to the pre-checkpointing build — and an
*enabled-but-inert* manager (no interval, no watermark) must also add
zero events, because both of its mechanisms are off.

Same recording technique as ``tests/sim/test_calendar_identity.py``:
a ``schedule_observer`` at the single heap-push choke point.
"""

from repro.api import (CheckpointConfig, LIN_SYNCH, MINOS_B, MINOS_O,
                       MinosCluster, YcsbWorkload)
from repro.hw.params import DEFAULT_MACHINE


def record_calendar(sim):
    calendar = []

    def observe(event, delay):
        calendar.append((sim._now, delay))

    sim.schedule_observer = observe
    return calendar


def run_small_workload(config, setup=None):
    cluster = MinosCluster(model=LIN_SYNCH, config=config,
                           params=DEFAULT_MACHINE.with_nodes(3))
    if setup is not None:
        setup(cluster)
    calendar = record_calendar(cluster.sim)
    workload = YcsbWorkload(records=12, requests_per_client=8,
                            write_fraction=0.6, seed=7)
    metrics = cluster.run_workload(workload, clients_per_node=1)
    return {
        "calendar": calendar,
        "events_processed": cluster.sim.events_processed,
        "write_latencies": metrics.write_latency.samples,
        "read_latencies": metrics.read_latency.samples,
    }


def assert_identical(reference, candidate):
    assert candidate["events_processed"] == reference["events_processed"]
    assert candidate["calendar"] == reference["calendar"]
    assert candidate["write_latencies"] == reference["write_latencies"]
    assert candidate["read_latencies"] == reference["read_latencies"]
    assert len(reference["calendar"]) > 1000, \
        "workload too small — the comparison is vacuous"


class TestCheckpointingOffIsFree:
    def test_inert_manager_is_calendar_transparent(self):
        """Enabled-but-inert checkpointing (no driver, no watermark)
        schedules exactly the same events as no checkpointing at all."""
        def enable_inert(cluster):
            cluster.enable_checkpoints(CheckpointConfig())

        for config in (MINOS_B, MINOS_O):
            plain = run_small_workload(config)
            inert = run_small_workload(config, setup=enable_inert)
            assert_identical(plain, inert)

    def test_plain_run_schedules_no_ckpt_events(self):
        """Without enable_checkpoints the hook stays None and nothing
        checkpoint-related ever runs: no fences, no truncation, no CKPT
        traffic."""
        for config in (MINOS_B, MINOS_O):
            cluster = MinosCluster(model=LIN_SYNCH, config=config,
                                   params=DEFAULT_MACHINE.with_nodes(3))
            workload = YcsbWorkload(records=12, requests_per_client=8,
                                    write_fraction=0.6, seed=7)
            cluster.run_workload(workload, clients_per_node=1)
            assert cluster.checkpoints is None
            for node in cluster.nodes:
                assert node.engine.ckpt is None
                assert node.kv.log.checkpoints_taken == 0
                assert node.kv.log.truncated_total == 0

    def test_active_checkpointing_diverges(self):
        """Sanity check that the comparison has teeth: with a watermark
        the calendar must NOT be identical (fences add events)."""
        def enable_active(cluster):
            cluster.enable_checkpoints(CheckpointConfig(watermark=4))

        plain = run_small_workload(MINOS_B)
        active = run_small_workload(MINOS_B, setup=enable_active)
        assert active["calendar"] != plain["calendar"]
