"""Tests for the per-node MinosKV store."""

from repro.core.timestamp import INITIAL_TS, Timestamp
from repro.kv.store import MinosKV
from repro.sim import Simulator


def store():
    return MinosKV(Simulator(), node_id=0)


class TestVolatile:
    def test_load_initial(self):
        kv = store()
        kv.load_initial("k", "v0")
        versioned = kv.volatile_read("k")
        assert versioned.value == "v0"
        assert versioned.ts == INITIAL_TS
        assert "k" in kv and len(kv) == 1

    def test_volatile_write_updates_metadata(self):
        kv = store()
        kv.load_initial("k", "v0")
        assert kv.volatile_write("k", "v1", Timestamp(1, 0))
        assert kv.meta("k").volatile_ts == Timestamp(1, 0)
        assert kv.volatile_read("k").value == "v1"

    def test_stale_write_guard(self):
        """The final obsoleteness guard: an older timestamp never
        overwrites a newer value (LLC stays consistent)."""
        kv = store()
        kv.volatile_write("k", "new", Timestamp(5, 1))
        assert not kv.volatile_write("k", "old", Timestamp(2, 0))
        assert kv.volatile_read("k").value == "new"

    def test_equal_ts_write_applies(self):
        # Replaying the same write (e.g. recovery catch-up) is a no-op
        # value-wise but must not be rejected.
        kv = store()
        kv.volatile_write("k", "v", Timestamp(1, 0))
        assert kv.volatile_write("k", "v", Timestamp(1, 0))

    def test_lookup_probes_positive(self):
        kv = store()
        kv.load_initial("k", "v")
        assert kv.lookup_probes("k") >= 1


class TestDurable:
    def test_persist_and_read_back(self):
        kv = store()
        kv.persist("k", "v1", Timestamp(1, 0))
        assert kv.durable_value("k") == "v1"

    def test_persist_scope_recorded(self):
        kv = store()
        entry = kv.persist("k", "v", Timestamp(1, 0), scope=3)
        assert entry.scope == 3
