"""Unit and property tests for the open-addressing hashtable."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KVError
from repro.kv.hashtable import HashTable


class TestBasics:
    def test_put_get(self):
        table = HashTable()
        table.put("a", 1)
        assert table.get("a") == 1
        assert table.get("missing") is None
        assert table.get("missing", "dflt") == "dflt"

    def test_overwrite(self):
        table = HashTable()
        table.put("a", 1)
        table.put("a", 2)
        assert table.get("a") == 2
        assert len(table) == 1

    def test_delete(self):
        table = HashTable()
        table.put("a", 1)
        assert table.delete("a")
        assert not table.delete("a")
        assert table.get("a") is None
        assert len(table) == 0

    def test_contains(self):
        table = HashTable()
        table.put("x", 1)
        assert "x" in table
        assert "y" not in table

    def test_reinsert_after_delete_reuses_tombstone(self):
        table = HashTable()
        table.put("a", 1)
        table.delete("a")
        table.put("a", 2)
        assert table.get("a") == 2
        assert len(table) == 1

    def test_bad_capacity(self):
        with pytest.raises(KVError):
            HashTable(initial_capacity=0)


class TestResize:
    def test_grows_past_load_factor(self):
        table = HashTable(initial_capacity=8)
        for i in range(100):
            table.put(f"key{i}", i)
        assert len(table) == 100
        assert table.capacity >= 128
        for i in range(100):
            assert table.get(f"key{i}") == i

    def test_load_factor_bounded(self):
        table = HashTable()
        for i in range(1000):
            table.put(i, i)
        assert table.load_factor <= HashTable.max_load + 1e-9

    def test_probes_counted(self):
        table = HashTable()
        table.put("a", 1)
        before = table.total_probes
        table.get("a")
        assert table.total_probes > before
        assert table.probes_for("a") >= 1


class TestItems:
    def test_items_round_trip(self):
        table = HashTable()
        data = {f"k{i}": i for i in range(50)}
        for key, value in data.items():
            table.put(key, value)
        assert dict(table.items()) == data


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(
    st.sampled_from(["put", "get", "delete"]),
    st.integers(min_value=0, max_value=20),
    st.integers()), max_size=200))
def test_model_equivalence_with_dict(ops):
    """The hashtable behaves exactly like a dict for any op sequence."""
    table = HashTable()
    model = {}
    for op, key, value in ops:
        if op == "put":
            table.put(key, value)
            model[key] = value
        elif op == "get":
            assert table.get(key) == model.get(key)
        else:
            assert table.delete(key) == (key in model)
            model.pop(key, None)
    assert len(table) == len(model)
    assert dict(table.items()) == model
