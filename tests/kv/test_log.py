"""Tests for the NVM log (out-of-order persists, obsolete-checked apply)."""

from repro.core.timestamp import Timestamp
from repro.kv.log import NvmLog


class TestAppendApply:
    def test_out_of_order_appends_newest_wins(self):
        """§III-B: the NVM can be updated out of order; apply-time
        obsoleteness checks keep the durable DB correct."""
        log = NvmLog()
        log.append("k", Timestamp(3, 0), "newest")
        log.append("k", Timestamp(1, 0), "oldest")
        log.append("k", Timestamp(2, 1), "middle")
        assert log.durable_value("k") == "newest"
        assert log.obsolete_skipped == 2

    def test_incremental_apply(self):
        log = NvmLog()
        log.append("k", Timestamp(1, 0), "a")
        assert log.apply_all() == 1
        log.append("k", Timestamp(2, 0), "b")
        assert log.apply_all() == 1  # only the new entry
        assert log.apply_all() == 0

    def test_durable_ts(self):
        log = NvmLog()
        assert log.durable_ts("k") is None
        log.append("k", Timestamp(4, 2), "v")
        assert log.durable_ts("k") == Timestamp(4, 2)

    def test_multiple_keys_independent(self):
        log = NvmLog()
        log.append("a", Timestamp(1, 0), "va")
        log.append("b", Timestamp(9, 0), "vb")
        log.append("a", Timestamp(2, 0), "va2")
        assert log.durable_value("a") == "va2"
        assert log.durable_value("b") == "vb"


class TestRecoverySupport:
    def test_serials_monotonic(self):
        log = NvmLog()
        first = log.append("k", Timestamp(1, 0), "a")
        second = log.append("k", Timestamp(2, 0), "b")
        assert second.serial > first.serial
        assert log.last_serial == second.serial

    def test_entries_since(self):
        log = NvmLog()
        log.append("k", Timestamp(1, 0), "a")
        marker = log.last_serial
        log.append("k", Timestamp(2, 0), "b")
        log.append("j", Timestamp(1, 1), "c")
        missed = log.entries_since(marker)
        assert [e.value for e in missed] == ["b", "c"]

    def test_empty_log(self):
        log = NvmLog()
        assert log.last_serial == -1
        assert log.entries_since(-1) == []

    def test_ingest_reserializes(self):
        source = NvmLog()
        source.append("k", Timestamp(1, 0), "a", scope=7)
        target = NvmLog()
        target.append("x", Timestamp(1, 1), "local")
        assert target.ingest(iter(source.entries_since(-1))) == 1
        assert target.durable_value("k") == "a"
        assert len(target) == 2
        assert target.scope_entries(7)[0].key == "k"

    def test_entries_for(self):
        log = NvmLog()
        log.append("a", Timestamp(1, 0), "x")
        log.append("b", Timestamp(1, 0), "y")
        assert len(log.entries_for("a")) == 1


class TestCheckpoint:
    def test_checkpoint_truncates_but_preserves_state(self):
        from repro.kv.log import NvmLog
        log = NvmLog()
        log.append("a", Timestamp(1, 0), "a1")
        log.append("a", Timestamp(2, 0), "a2")
        log.append("b", Timestamp(1, 1), "b1")
        truncated = log.checkpoint()
        assert truncated == 3
        assert len(log) == 0
        assert log.durable_value("a") == "a2"
        assert log.durable_value("b") == "b1"
        assert log.checkpoints_taken == 1

    def test_last_serial_survives_checkpoint(self):
        from repro.kv.log import NvmLog
        log = NvmLog()
        log.append("a", Timestamp(1, 0), "x")
        before = log.last_serial
        log.checkpoint()
        assert log.last_serial == before

    def test_entries_since_uses_checkpoint_image(self):
        """A recovering node that missed the whole history gets one
        entry per key (the compact image) plus the live tail."""
        from repro.kv.log import NvmLog
        log = NvmLog()
        for version in range(1, 6):
            log.append("hot", Timestamp(version, 0), f"v{version}")
        log.checkpoint()
        log.append("cold", Timestamp(1, 1), "c1")
        payload = log.entries_since(-1)
        assert [(e.key, e.value) for e in payload] == \
            [("hot", "v5"), ("cold", "c1")]

    def test_entries_since_after_checkpoint_serial(self):
        from repro.kv.log import NvmLog
        log = NvmLog()
        log.append("a", Timestamp(1, 0), "x")
        marker = log.last_serial
        log.checkpoint()
        log.append("a", Timestamp(2, 0), "y")
        assert [e.value for e in log.entries_since(marker)] == ["y"]

    def test_recovery_with_checkpointed_designated_node(self):
        """End-to-end: the designated node checkpointed its log; the
        rejoining node still converges."""
        from repro import LIN_SYNCH, MINOS_B, MinosCluster
        from repro.core.recovery import RecoveryManager
        from repro.hw.params import MachineParams, us

        cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                               params=MachineParams(nodes=3))
        manager = RecoveryManager(cluster)
        for node in cluster.nodes:
            node.engine.tolerate_stale_acks = True
        cluster.load_records([("k", "v0")])
        manager.crash(2)
        cluster.sim.run(until=us(1000))
        cluster.write(0, "k", "v1")
        cluster.write(0, "k", "v2")
        cluster.nodes[0].kv.log.checkpoint()  # compact before catch-up
        process = manager.recover(2)
        cluster.sim.run(until=cluster.sim.now + us(2000))
        assert process.triggered
        assert cluster.nodes[2].kv.volatile_read("k").value == "v2"
        assert cluster.nodes[2].kv.durable_value("k") == "v2"
