"""Contract tests for the stable public API surface (:mod:`repro.api`).

The facade's promise is threefold: every name in ``repro.api.__all__``
resolves, the top-level :mod:`repro` package re-exports the same
objects, and the :class:`~repro.cluster.results.OpResult` record keeps
its field layout.  Breaking any of these breaks downstream callers that
import from the facade, so changes here are deliberate API events.

The tuple-unpacking shim shipped in PR 2 ("removed next release") is
gone: unpacking an ``OpResult`` positionally is now a ``TypeError``,
pinned below so the shim cannot quietly return.
"""

import dataclasses

import pytest

import repro
from repro import api
from repro.api import (LIN_SCOPE, LIN_SYNCH, MINOS_B, MinosCluster,
                       OpResult, Timestamp)
from repro.hw.params import DEFAULT_MACHINE


class TestFacadeSurface:
    def test_every_name_in_all_resolves(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert not missing, f"repro.api.__all__ names missing: {missing}"

    def test_no_duplicates_in_all(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_repro_reexports_the_facade(self):
        """``from repro import X`` and ``from repro.api import X`` must
        hand out the *same* object for every facade name."""
        for name in api.__all__:
            assert name in repro.__all__, \
                f"{name} is in repro.api.__all__ but not repro.__all__"
            assert getattr(repro, name) is getattr(api, name), \
                f"repro.{name} is not the facade's object"

    def test_repro_all_resolves(self):
        missing = [name for name in repro.__all__
                   if not hasattr(repro, name)]
        assert not missing, f"repro.__all__ names missing: {missing}"

    def test_api_module_is_exported(self):
        assert repro.api is api

    def test_star_import_matches_all(self):
        namespace = {}
        exec("from repro.api import *", namespace)
        exported = {name for name in namespace if not name.startswith("_")}
        assert exported == set(api.__all__)


class TestOpResultContract:
    #: The frozen field layout downstream code may rely on.
    EXPECTED_FIELDS = ("op", "key", "value", "latency", "volatile_ts",
                      "durable_ts", "obsolete")

    def make(self, **overrides):
        defaults = dict(op="write", key="k", value="v", latency=1.5e-6,
                        volatile_ts=Timestamp(3, 1), durable_ts=None)
        defaults.update(overrides)
        return OpResult(**defaults)

    def test_field_names_and_order_are_stable(self):
        fields = tuple(f.name for f in dataclasses.fields(OpResult))
        assert fields == self.EXPECTED_FIELDS

    def test_frozen(self):
        result = self.make()
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.latency = 0.0

    def test_obsolete_defaults_false(self):
        assert self.make().obsolete is False

    def test_ts_aliases_volatile_ts(self):
        result = self.make()
        assert result.ts is result.volatile_ts

    def test_tuple_unpacking_shim_is_gone(self):
        """The one-release ``__iter__`` shim was removed: positional
        unpacking must fail loudly instead of silently yielding a stale
        field order."""
        result = self.make(durable_ts=Timestamp(3, 1))
        assert not hasattr(type(result), "__iter__")
        with pytest.raises(TypeError):
            _value, _latency, _volatile_ts, _durable_ts = result

    def test_named_access_does_not_warn(self):
        import warnings

        result = self.make()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _ = (result.op, result.key, result.value, result.latency,
                 result.volatile_ts, result.durable_ts, result.obsolete)


class TestClusterReturnsOpResult:
    """End-to-end: the direct-operation API hands back OpResult records."""

    def test_write_and_read(self):
        cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                               params=DEFAULT_MACHINE.with_nodes(3))
        cluster.load_records([("k", "v0")])

        written = cluster.write(0, "k", "v1")
        assert isinstance(written, OpResult)
        assert written.op == "write"
        assert written.key == "k" and written.value == "v1"
        assert written.latency > 0
        assert written.volatile_ts is not None
        # ⟨Lin, Synch⟩ persists in the critical path, so the write
        # vouches for durability itself.
        assert written.durable_ts == written.volatile_ts
        assert written.obsolete is False

        read = cluster.read(1, "k")
        assert isinstance(read, OpResult)
        assert read.op == "read"
        assert read.value == "v1"
        assert read.volatile_ts == written.volatile_ts
        assert read.durable_ts is not None

    def test_persist_scope(self):
        cluster = MinosCluster(model=LIN_SCOPE, config=MINOS_B,
                               params=DEFAULT_MACHINE.with_nodes(3))
        cluster.load_records([("k", "v0")])
        write = cluster.write(0, "k", "v1", scope=5)
        # Scoped writes complete volatile; durability waits for the
        # explicit persist point.
        assert write.durable_ts is None
        persist = cluster.persist_scope(0, 5)
        assert isinstance(persist, OpResult)
        assert persist.op == "persist"
        assert persist.key == 5
        assert persist.value is None
        assert persist.latency > 0
        assert persist.volatile_ts is None and persist.durable_ts is None
