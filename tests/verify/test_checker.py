"""Tests for the explicit-state model checker itself."""

import pytest

from repro.errors import VerificationError
from repro.verify.checker import CheckResult, ModelChecker


class CounterSpec:
    """A tiny spec: count 0..limit, optionally with defects injected."""

    def __init__(self, limit=3, deadlock_at=None, livelock_at=None,
                 bad_invariant=False):
        self.limit = limit
        self.deadlock_at = deadlock_at
        self.livelock_at = livelock_at
        if bad_invariant:
            self.invariants = [("count below 2", lambda s: s < 2)]
        else:
            self.invariants = [("non-negative", lambda s: s >= 0)]

    def initial_states(self):
        yield 0

    def actions(self, state):
        if state == self.deadlock_at:
            return
        if state == self.livelock_at:
            yield ("spin", 999)  # a side loop that never terminates
            return
        if state == 999:
            yield ("spin", 999)
            return
        if state < self.limit:
            yield ("inc", state + 1)

    def is_terminal(self, state):
        return state == self.limit


class TestChecker:
    def test_clean_spec_passes(self):
        result = ModelChecker(CounterSpec()).check()
        assert result.ok
        assert result.states == 4
        assert result.terminal_states == 1

    def test_invariant_violation_with_trace(self):
        result = ModelChecker(CounterSpec(bad_invariant=True)).check()
        assert not result.ok
        violation = result.violations[0]
        assert violation.kind == "invariant"
        assert violation.trace == ("inc", "inc")  # state 2 reached

    def test_deadlock_detected(self):
        result = ModelChecker(CounterSpec(deadlock_at=2)).check()
        assert not result.ok
        assert result.violations[0].kind == "deadlock"

    def test_livelock_detected(self):
        result = ModelChecker(CounterSpec(livelock_at=1)).check()
        assert any(v.kind == "livelock" for v in result.violations)

    def test_max_states_guard(self):
        class Unbounded:
            invariants = ()

            def initial_states(self):
                yield 0

            def actions(self, state):
                yield ("inc", state + 1)

            def is_terminal(self, state):
                return False

        with pytest.raises(VerificationError, match="max_states"):
            ModelChecker(Unbounded(), max_states=100).check()

    def test_raise_on_violation(self):
        result = ModelChecker(CounterSpec(bad_invariant=True)).check()
        with pytest.raises(VerificationError):
            result.raise_on_violation()

    def test_result_str(self):
        result = ModelChecker(CounterSpec()).check()
        assert "OK" in str(result)
