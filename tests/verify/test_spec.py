"""Model-checking the MINOS protocols (paper §VI, Table I)."""

import pytest

from repro.core.model import ALL_MODELS, LIN_SCOPE, LIN_STRICT, LIN_SYNCH
from repro.verify import ModelChecker, ProtocolSpec, WriteDef
from repro.verify import spec as S


@pytest.mark.parametrize("offload", [False, True],
                         ids=["MINOS-B", "MINOS-O"])
@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
def test_two_conflicting_writes_verify(model, offload):
    """The paper's headline verification result: every model passes all
    Table I conditions (two concurrent writes to one key, two nodes)."""
    spec = ProtocolSpec(model=model, nodes=2,
                        writes=(WriteDef(0), WriteDef(1)), offload=offload)
    result = ModelChecker(spec).check()
    assert result.ok, result.violations[:1]
    assert result.terminal_states > 0


def test_three_nodes_single_write_synch():
    spec = ProtocolSpec(model=LIN_SYNCH, nodes=3, writes=(WriteDef(0),))
    result = ModelChecker(spec).check()
    assert result.ok
    assert result.states > 20


def test_two_keys_independent_writes():
    spec = ProtocolSpec(model=LIN_SYNCH, nodes=2,
                        writes=(WriteDef(0, key=0), WriteDef(1, key=1)))
    result = ModelChecker(spec).check()
    assert result.ok


def test_scope_model_includes_persist_txn():
    spec = ProtocolSpec(model=LIN_SCOPE, nodes=2,
                        writes=(WriteDef(0), WriteDef(1)))
    assert spec.persist_coord == 0
    result = ModelChecker(spec).check()
    assert result.ok


def test_non_scope_models_have_no_persist_txn():
    spec = ProtocolSpec(model=LIN_SYNCH, nodes=2, writes=(WriteDef(0),))
    assert spec.persist_coord is None


class TestMutationsAreCaught:
    """Break the protocol; the checker must notice (checker soundness)."""

    def test_premature_glb_advance_violates_2c(self):
        """A coordinator that marks glb_volatileTS before collecting the
        ACKs breaks invariant 2c."""
        spec = ProtocolSpec(model=LIN_SYNCH, nodes=2, writes=(WriteDef(0),))
        original = spec._launch_or_obsolete

        def broken(state, w):
            for label, nxt in original(state, w):
                if label.startswith("launch"):
                    records, writes, msgs, tasks, pt = nxt
                    ts = writes[w][0]
                    coord = spec.writes_def[w].coord
                    ki = spec.key_index(spec.writes_def[w].key)
                    rec = list(records[coord][ki])
                    rec[1] = ts  # glb_volatileTS := TS_WR, way too early
                    records = spec._set_record(records, coord, ki,
                                               tuple(rec))
                    nxt = (records, writes, msgs, tasks, pt)
                yield label, nxt

        spec._launch_or_obsolete = broken
        result = ModelChecker(spec).check()
        assert not result.ok
        assert any("2c" in v.name for v in result.violations)

    def test_skipping_acks_violates_visibility(self):
        """A coordinator that declares completion without waiting for
        ACKs breaks linearizable visibility."""
        spec = ProtocolSpec(model=LIN_SYNCH, nodes=2, writes=(WriteDef(0),))
        original = spec._coordinator_progress

        def broken(state, w):
            records, writes, msgs, tasks, pt = state
            ts, phase, acks_c, acks_p = writes[w]
            if phase == S.WAIT:
                # Complete instantly, ACKs be damned.
                done = spec._set_write(writes, w, (ts, S.DONE, acks_c,
                                                   acks_p))
                yield (f"cheat(w{w})", (records, done, msgs, tasks, pt))
                return
            yield from original(state, w)

        spec._coordinator_progress = broken
        result = ModelChecker(spec).check()
        assert not result.ok
        names = {v.name for v in result.violations}
        assert any("visibility" in n or "durability" in n or "2" in n
                   for n in names)

    def test_unlocking_before_persist_violates_read_enforcement(self):
        """Synch: releasing the RDLock at the coordinator before ALL
        followers persisted lets a read see unpersisted data (needs three
        nodes so that one ACK is not yet all ACKs)."""
        spec = ProtocolSpec(model=LIN_SYNCH, nodes=3, writes=(WriteDef(0),))
        original = spec._deliver_ack

        def broken(state, msg):
            for label, nxt in original(state, msg):
                records, writes, msgs, tasks, pt = nxt
                w = msg[1]
                ts = writes[w][0]
                coord = spec.writes_def[w].coord
                ki = spec.key_index(spec.writes_def[w].key)
                rec = list(records[coord][ki])
                if rec[3] == ts:
                    rec[3] = S.NULL  # release the lock on first ACK
                    records = spec._set_record(records, coord, ki,
                                               tuple(rec))
                yield label, (records, writes, msgs, tasks, pt)

        spec._deliver_ack = broken
        result = ModelChecker(spec).check()
        assert not result.ok


class TestConfigValidation:
    def test_too_few_nodes(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ProtocolSpec(nodes=1)

    def test_bad_coordinator(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ProtocolSpec(nodes=2, writes=(WriteDef(5),))
