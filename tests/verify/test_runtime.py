"""Tests for the runtime invariant monitor (real-engine checking)."""

import pytest

from repro import (ALL_MODELS, LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster,
                   YcsbWorkload)
from repro.core.model import EXTENSION_MODELS
from repro.core.timestamp import Timestamp
from repro.errors import VerificationError
from repro.hw.params import MachineParams
from repro.verify import RuntimeMonitor

ARCHES = [MINOS_B, MINOS_O]


class TestCleanRuns:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_workload_run_satisfies_all_invariants(self, config, model):
        cluster = MinosCluster(model=model, config=config,
                               params=MachineParams(nodes=3))
        monitor = RuntimeMonitor(cluster)
        workload = YcsbWorkload(records=30, requests_per_client=15,
                                write_fraction=0.6, seed=17)
        cluster.run_workload(workload, clients_per_node=2)
        cluster.sim.run()  # drain background persists / drains
        monitor.check_quiescent()
        assert monitor.checks_run == 4

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    @pytest.mark.parametrize("model", EXTENSION_MODELS,
                             ids=lambda m: m.name)
    def test_extension_models_satisfy_agreement(self, config, model):
        cluster = MinosCluster(model=model, config=config,
                               params=MachineParams(nodes=3))
        monitor = RuntimeMonitor(cluster)
        workload = YcsbWorkload(records=20, requests_per_client=15,
                                write_fraction=0.7, seed=23)
        cluster.run_workload(workload, clients_per_node=2)
        cluster.sim.run()
        monitor.check_agreement()
        monitor.check_durability()
        monitor.check_locks_released()


class TestViolationDetection:
    def _quiesced_cluster(self):
        cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                               params=MachineParams(nodes=2))
        cluster.load_records([("k", "v0")])
        cluster.write(0, "k", "v1")
        cluster.sim.run()
        return cluster

    def test_detects_divergent_replica(self):
        cluster = self._quiesced_cluster()
        # Corrupt one replica behind the protocol's back.
        cluster.nodes[1].kv.table.put(
            "k", type(cluster.nodes[1].kv.volatile_read("k"))(
                "corrupted", Timestamp(9, 9)))
        with pytest.raises(VerificationError, match="disagreement"):
            RuntimeMonitor(cluster).check_agreement()

    def test_detects_glb_ahead(self):
        cluster = self._quiesced_cluster()
        cluster.nodes[0].kv.meta("k").glb_volatile_ts = Timestamp(99, 0)
        with pytest.raises(VerificationError, match="ahead"):
            RuntimeMonitor(cluster).check_glb_not_ahead()

    def test_detects_leaked_lock(self):
        cluster = self._quiesced_cluster()
        cluster.nodes[1].kv.meta("k").rdlock_owner = Timestamp(1, 0)
        with pytest.raises(VerificationError, match="RDLock"):
            RuntimeMonitor(cluster).check_locks_released()

    def test_detects_lost_durability(self):
        cluster = self._quiesced_cluster()
        kv = cluster.nodes[0].kv
        kv.table.put("k", type(kv.volatile_read("k"))(
            "never-persisted", Timestamp(5, 0)))
        kv.meta("k").set_volatile(Timestamp(5, 0))
        with pytest.raises(VerificationError, match="durable"):
            RuntimeMonitor(cluster).check_durability()
