"""Every example script must run end-to-end (they are documentation)."""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(name, argv=("prog",)):
    old_argv = sys.argv
    sys.argv = list(argv)
    try:
        runpy.run_path(f"{EXAMPLES}/{name}", run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "MINOS-B" in out and "MINOS-O" in out
    assert "durable on all 5 replicas: True" in out


def test_model_checking(capsys):
    run_example("model_checking.py")
    out = capsys.readouterr().out
    assert out.count("PASS") == 10
    assert "counterexample" in out


def test_scope_persistency(capsys):
    run_example("scope_persistency.py")
    out = capsys.readouterr().out
    assert "scope durable on all replicas: True" in out


def test_failure_recovery(capsys):
    run_example("failure_recovery.py")
    out = capsys.readouterr().out
    assert "node2 sees: balance=300" in out


def test_profile_write(capsys):
    import json
    import os

    try:
        run_example("profile_write.py")
    finally:
        if os.path.exists("profile_write.trace.json"):
            with open("profile_write.trace.json") as handle:
                payload = json.load(handle)
            os.remove("profile_write.trace.json")
    out = capsys.readouterr().out
    # The offload architecture's extra SNIC phases are visible...
    assert "vfifo_residency" in out and "ack_wait" in out
    # ...and the exported trace is loadable.
    assert "valid" in out
    assert any(e.get("ph") == "X" for e in payload["traceEvents"])


@pytest.mark.slow
def test_ycsb_comparison(capsys):
    run_example("ycsb_comparison.py",
                argv=("prog", "--requests", "10", "--records", "50"))
    out = capsys.readouterr().out
    assert "MINOS-O" in out


@pytest.mark.slow
def test_microservice_login(capsys):
    run_example("microservice_login.py")
    out = capsys.readouterr().out
    assert "average reduction" in out


def test_eventual_consistency_example(capsys):
    run_example("eventual_consistency.py")
    out = capsys.readouterr().out
    assert "<EC, Event>" in out and "stale" in out


def test_trace_transaction_example(capsys):
    run_example("trace_transaction.py")
    out = capsys.readouterr().out
    assert "write:start" in out and "MINOS-O" in out


def test_latency_vs_load_example(capsys):
    run_example("latency_vs_load.py")
    out = capsys.readouterr().out
    assert "MINOS-B saturates first" in out
