"""Tests for the protocol tracer."""

import pytest

from repro import LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster
from repro.hw.params import MachineParams
from repro.trace import TraceEvent, Tracer
from repro.sim import Simulator


class TestTracer:
    def test_emit_and_select(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.emit(0, "write", "start", key="k")
        tracer.emit(1, "follower", "INV received", key="k")
        assert len(tracer) == 2
        assert len(tracer.select(category="write")) == 1
        assert len(tracer.select(node=1)) == 1
        assert len(tracer.select(label_contains="INV")) == 1
        assert tracer.categories() == {"write": 1, "follower": 1}

    def test_event_details(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.emit(0, "write", "start", key="k", latency_us=1.5)
        event = tracer.events[0]
        assert event.detail("key") == "k"
        assert event.detail("missing", 42) == 42
        assert "key=k" in str(event)

    def test_empty_timeline(self):
        assert Tracer(Simulator()).timeline() == "(no events)"


class TestClusterTracing:
    @pytest.mark.parametrize("config", [MINOS_B, MINOS_O],
                             ids=lambda c: c.name)
    def test_write_lifecycle_recorded_in_order(self, config):
        cluster = MinosCluster(model=LIN_SYNCH, config=config,
                               params=MachineParams(nodes=3))
        tracer = cluster.attach_tracer()
        cluster.load_records([("k", "v0")])
        cluster.write(0, "k", "v1")
        cluster.sim.run()
        write_events = tracer.select(category="write", node=0)
        labels = [e.label for e in write_events]
        assert labels[0] == "start"
        assert labels[-1] == "complete"
        # Both followers handled the INV.
        followers = {e.node for e in tracer.select(category="follower")}
        assert followers == {1, 2}
        # Durability happened on every node.
        persist_nodes = {e.node for e in tracer.select(category="persist")}
        assert persist_nodes == {0, 1, 2}

    def test_timeline_renders_lanes(self):
        cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_O,
                               params=MachineParams(nodes=2))
        tracer = cluster.attach_tracer()
        cluster.load_records([("k", "v0")])
        cluster.write(0, "k", "v1")
        cluster.sim.run()
        text = tracer.timeline()
        assert "node 0" in text and "node 1" in text
        assert "write:start" in text

    def test_events_monotone_in_time(self):
        cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                               params=MachineParams(nodes=2))
        tracer = cluster.attach_tracer()
        cluster.load_records([("k", "v0")])
        cluster.write(0, "k", "v1")
        cluster.write(1, "k", "v2")
        cluster.sim.run()
        times = [e.time for e in tracer.events]
        assert times == sorted(times)
