"""Unit tests for the span/segment data model and the recorder."""

from repro.obs import Observability
from repro.obs.spans import (Instant, LANE_PHASES, LANE_SNIC, Segment,
                             Span, freeze_attrs)


class FakeSim:
    """Just enough simulator for the recorder: a settable clock."""

    def __init__(self) -> None:
        self.now = 0.0


def make_obs():
    sim = FakeSim()
    return Observability(sim), sim


class TestRecords:
    def test_span_duration_and_finished(self):
        span = Span(op_id=1, node=0, kind="write", key="k", start=1.0)
        assert not span.finished and span.duration == 0.0
        span.end = 3.5
        span.status = "ok"
        assert span.finished and span.duration == 2.5

    def test_segment_duration_and_attr_lookup(self):
        segment = Segment(op_id=1, node=2, phase="ack_wait", start=1.0,
                          end=4.0, attrs=freeze_attrs({"kind": "ACK"}))
        assert segment.duration == 3.0
        assert segment.attr("kind") == "ACK"
        assert segment.attr("absent", "dflt") == "dflt"

    def test_instant_attr_lookup(self):
        instant = Instant(time=1.0, node=0, name="fault.drop",
                          attrs=freeze_attrs({"dst": 2}))
        assert instant.attr("dst") == 2

    def test_freeze_attrs_is_order_independent(self):
        assert freeze_attrs({"b": 2, "a": 1}) == \
            freeze_attrs({"a": 1, "b": 2})


class TestSpanLifecycle:
    def test_begin_end_records_latency(self):
        obs, sim = make_obs()
        obs.op_begin(0, "write", 7, key="k")
        sim.now = 2e-6
        obs.op_end(0, 7, status="ok")
        (span,) = obs.spans_for(kind="write")
        assert span.status == "ok" and span.duration == 2e-6
        registry = obs.registry(0)
        assert registry.counter("ops.write.started") == 1
        assert registry.counter("ops.write.ok") == 1
        assert registry.histogram("latency.write").count == 1

    def test_none_op_id_is_ignored(self):
        obs, _ = make_obs()
        assert obs.op_begin(0, "write", None) is None
        assert len(obs.spans) == 0

    def test_end_of_unknown_op_is_ignored(self):
        obs, _ = make_obs()
        obs.op_end(0, 999)  # must not raise
        assert len(obs.spans) == 0

    def test_double_end_keeps_first_status(self):
        obs, sim = make_obs()
        obs.op_begin(0, "write", 1)
        sim.now = 1.0
        obs.op_end(0, 1, status="obsolete")
        sim.now = 2.0
        obs.op_end(0, 1, status="ok")
        assert obs.spans[1].status == "obsolete"
        assert obs.spans[1].end == 1.0

    def test_read_ids_are_negative_and_unique(self):
        obs, _ = make_obs()
        first = obs.begin_read(0, "k")
        second = obs.begin_read(1, "k")
        assert first < 0 and second < 0 and first != second
        assert obs.spans[first].kind == "read"


class TestSegments:
    def test_begin_end_pair(self):
        obs, sim = make_obs()
        obs.seg_begin(1, 5, "ack_wait")
        sim.now = 3e-6
        obs.seg_end(1, 5, "ack_wait", kind="ACK")
        (segment,) = obs.segments_for(op_id=5)
        assert segment.phase == "ack_wait"
        assert segment.duration == 3e-6
        assert segment.lane == LANE_PHASES
        assert segment.attr("kind") == "ACK"
        assert obs.open_segments() == []

    def test_end_without_begin_is_ignored(self):
        obs, _ = make_obs()
        obs.seg_end(0, 1, "never_begun")
        assert obs.segments == []

    def test_direct_seg_with_explicit_interval(self):
        obs, _ = make_obs()
        obs.seg(2, 9, "vfifo_residency", 1e-6, 4e-6, lane=LANE_SNIC)
        (segment,) = obs.segments
        assert segment.lane == LANE_SNIC and segment.duration == 3e-6

    def test_none_op_id_segments_are_dropped(self):
        obs, _ = make_obs()
        obs.seg_begin(0, None, "x")
        obs.seg(0, None, "x", 0.0, 1.0)
        assert obs.segments == [] and obs.open_segments() == []

    def test_same_phase_on_different_nodes_does_not_collide(self):
        obs, sim = make_obs()
        obs.seg_begin(0, 1, "inv_handle")
        obs.seg_begin(1, 1, "inv_handle")
        sim.now = 1e-6
        obs.seg_end(0, 1, "inv_handle")
        assert len(obs.segments) == 1
        assert obs.open_segments() == [(1, 1, "inv_handle")]


class TestQueriesAndSummaries:
    def test_filters(self):
        obs, sim = make_obs()
        obs.op_begin(0, "write", 1)
        obs.op_begin(0, "read", -1)
        obs.seg(0, 1, "ack_wait", 0.0, 1e-6)
        obs.seg(1, 1, "inv_handle", 0.0, 2e-6)
        obs.instant(1, "durable_advance", op_id=1)
        assert len(obs.spans_for(kind="write")) == 1
        assert len(obs.segments_for(node=1)) == 1
        assert len(obs.segments_for(phase="ack_wait")) == 1
        assert len(obs.instants_for(name="durable_advance")) == 1
        assert obs.nodes() == [0, 1]
        assert len(obs) == 5

    def test_phase_summaries_are_exact(self):
        obs, _ = make_obs()
        for duration in (1e-6, 2e-6, 3e-6):
            obs.seg(0, 1, "ack_wait", 0.0, duration)
        summary = obs.phase_summaries()["ack_wait"]
        assert summary.count == 3
        assert summary.mean == 2e-6
        assert summary.minimum == 1e-6 and summary.maximum == 3e-6

    def test_to_dict_is_json_shaped(self):
        import json

        obs, sim = make_obs()
        obs.op_begin(0, "write", 1)
        sim.now = 1e-6
        obs.op_end(0, 1)
        obs.fault(0, "drop", dst=2)
        payload = obs.to_dict()
        json.dumps(payload)  # must be serializable as-is
        assert payload["spans"] == 1
        assert payload["nodes"]["-1"]["counters"]["faults.drop"] == 1
