"""Exporter tests: Chrome trace structure, JSONL round-trip, validator."""

import json

from repro.obs import (Observability, chrome_trace, validate_chrome_trace,
                       write_chrome_trace, write_jsonl)
from repro.obs.export import jsonl_events
from repro.obs.spans import LANE_SNIC


class FakeSim:
    def __init__(self) -> None:
        self.now = 0.0


def populated_obs():
    sim = FakeSim()
    obs = Observability(sim)
    obs.op_begin(0, "write", 11, key="alpha")
    obs.seg_begin(0, 11, "ack_wait")
    sim.now = 2e-6
    obs.seg_end(0, 11, "ack_wait", kind="ACK")
    obs.seg(1, 11, "vfifo_residency", 1e-6, 2e-6, lane=LANE_SNIC)
    obs.instant(1, "durable_advance", op_id=11, ts=(1, 0))
    obs.gauge(1, "snic.vfifo.depth", 3.0)
    sim.now = 3e-6
    obs.op_end(0, 11, status="ok")
    return obs


class TestChromeTrace:
    def test_payload_validates_and_serializes(self):
        payload = chrome_trace(populated_obs())
        assert validate_chrome_trace(payload) == []
        json.dumps(payload)

    def test_span_becomes_complete_event_in_microseconds(self):
        payload = chrome_trace(populated_obs())
        (event,) = [e for e in payload["traceEvents"]
                    if e["ph"] == "X" and e["name"] == "write alpha"]
        assert event["ts"] == 0.0
        assert event["dur"] == 3.0  # 3 us
        assert event["pid"] == 0
        assert event["args"]["op_id"] == 11
        assert event["args"]["status"] == "ok"

    def test_segments_carry_op_id_and_lane_tid(self):
        payload = chrome_trace(populated_obs())
        phases = {e["name"]: e for e in payload["traceEvents"]
                  if e["ph"] == "X" and "phase" in e.get("cat", "")}
        assert phases["ack_wait"]["args"]["op_id"] == 11
        assert phases["ack_wait"]["tid"] == 1
        assert phases["vfifo_residency"]["tid"] == 2  # snic lane

    def test_metadata_names_every_process_and_lane(self):
        payload = chrome_trace(populated_obs())
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        process_names = {e["pid"]: e["args"]["name"] for e in metadata
                         if e["name"] == "process_name"}
        assert process_names[0] == "node0" and process_names[1] == "node1"
        lanes = {(e["pid"], e["args"]["name"]) for e in metadata
                 if e["name"] == "thread_name"}
        assert (1, "snic") in lanes and (0, "phases") in lanes

    def test_gauge_becomes_counter_track(self):
        payload = chrome_trace(populated_obs())
        (counter,) = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert counter["name"] == "snic.vfifo.depth"
        assert counter["args"] == {"snic.vfifo.depth": 3.0}

    def test_open_span_exports_with_zero_duration(self):
        sim = FakeSim()
        obs = Observability(sim)
        obs.op_begin(0, "write", 1)
        payload = chrome_trace(obs)
        assert validate_chrome_trace(payload) == []
        (event,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert event["dur"] == 0.0 and event["args"]["status"] == "open"

    def test_write_returns_validatable_payload(self, tmp_path):
        path = tmp_path / "trace.json"
        payload = write_chrome_trace(populated_obs(), str(path))
        assert validate_chrome_trace(payload) == []
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(payload))


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_flags_unknown_phase_and_missing_fields(self):
        payload = {"traceEvents": [
            {"ph": "Q", "name": "x", "pid": 0},
            {"ph": "X", "pid": 0, "ts": 0.0, "dur": 1.0},
            {"ph": "X", "name": "y", "pid": 0, "ts": "bad", "dur": -1.0},
            {"ph": "C", "name": "c", "pid": 0, "ts": 0.0, "args": None},
            "not-an-event",
        ]}
        problems = validate_chrome_trace(payload)
        assert any("unknown phase" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)
        assert any("non-numeric 'ts'" in p for p in problems)
        assert any("negative 'dur'" in p for p in problems)
        assert any("'args' dict" in p for p in problems)
        assert any("must be an object" in p for p in problems)

    def test_accepts_empty_trace(self):
        assert validate_chrome_trace({"traceEvents": []}) == []


class TestJsonl:
    def test_stream_round_trips(self):
        obs = populated_obs()
        lines = [json.loads(line) for line in jsonl_events(obs)]
        header = lines[0]
        assert header["type"] == "meta"
        assert header["format"] == "repro-obs/1"
        by_type = {}
        for line in lines[1:]:
            by_type.setdefault(line["type"], []).append(line)
        assert len(by_type["span"]) == header["spans"] == 1
        assert len(by_type["segment"]) == header["segments"] == 2
        assert len(by_type["instant"]) == header["instants"] == 1
        (span,) = by_type["span"]
        assert span["op_id"] == 11 and span["status"] == "ok"
        # Segment attrs survive as JSON objects.
        phases = {s["phase"]: s for s in by_type["segment"]}
        assert phases["ack_wait"]["attrs"] == {"kind": "ACK"}
        # Non-JSON-native attr values are stringified, not dropped.
        (instant,) = by_type["instant"]
        assert instant["attrs"]["ts"] == "(1, 0)"
        nodes = {m["node"] for m in by_type["metrics"]}
        assert {0, 1} <= nodes

    def test_write_jsonl_counts_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(populated_obs(), str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count
        for line in lines:
            json.loads(line)
