"""Chaos-trace regression: a lossy run exports a valid Perfetto trace.

The retransmission layer (PR 1) and the observability layer meet here:
under packet loss the coordinator's retransmit timers fire, and each
resend must show up as a ``retransmit`` segment correlated — by protocol
``write_id`` — with the span of the write it repaired.  This pins the
end-to-end acceptance criterion: every committed write has one span with
at least three protocol-phase segments, and fault/retransmit activity is
attributable to specific operations, not just global counters.
"""

import pytest

from repro.api import (LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster,
                       YcsbWorkload, validate_chrome_trace,
                       write_chrome_trace)
from repro.faults import FaultPlan, run_chaos
from repro.hw.params import MachineParams

ARCHES = [MINOS_B, MINOS_O]


def lossy_run(config, drop=0.05, seed=11):
    cluster = MinosCluster(model=LIN_SYNCH, config=config,
                           params=MachineParams(nodes=3))
    obs = cluster.attach_obs()
    plan = FaultPlan.lossy(seed=seed, drop=drop)
    workload = YcsbWorkload(records=20, requests_per_client=12,
                            write_fraction=0.8, seed=seed)
    result = run_chaos(cluster, plan, workload, clients_per_node=1)
    assert result.ok, result.violations
    return cluster, obs, result


class TestChaosTrace:
    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_lossy_run_exports_valid_trace(self, config, tmp_path):
        _, obs, _ = lossy_run(config)
        payload = write_chrome_trace(obs, str(tmp_path / "chaos.json"))
        assert validate_chrome_trace(payload) == []
        assert (tmp_path / "chaos.json").is_file()

    @pytest.mark.parametrize("config", ARCHES, ids=lambda c: c.name)
    def test_committed_writes_have_phase_segments(self, config):
        _, obs, _ = lossy_run(config)
        committed = obs.spans_for(kind="write", status="ok")
        assert committed, "chaos run committed no writes"
        for span in committed:
            segments = obs.segments_for(op_id=span.op_id)
            assert len(segments) >= 3, \
                f"write {span.op_id} has only {segments}"
            # Cross-node correlation: the coordinator's segments and at
            # least one other node's share the op id.
            nodes = {segment.node for segment in segments}
            assert span.node in nodes
            assert len(nodes) >= 2, \
                f"write {span.op_id} left no follower/SNIC segments"

    def test_retransmits_correlate_with_spans(self):
        cluster, obs, _ = lossy_run(MINOS_B, drop=0.12, seed=5)
        assert cluster.metrics.counters.inv_retransmits > 0, \
            "loss rate too low to exercise retransmission"
        retransmits = obs.segments_for(phase="retransmit")
        assert retransmits, "retransmissions happened but left no segments"
        for segment in retransmits:
            span = obs.spans.get(segment.op_id)
            assert span is not None, \
                f"retransmit segment {segment} matches no span"
            assert span.kind in ("write", "persist")
            assert segment.attr("type") in ("INV", "INV_EC")
            assert segment.attr("targets") >= 1

    def test_fault_instants_name_injected_faults(self):
        _, obs, result = lossy_run(MINOS_B, drop=0.10, seed=5)
        drops = obs.instants_for(name="fault.drop")
        assert len(drops) == result.fault_counters.dropped
        # The fabric-wide fault counter agrees with the injector's.
        fabric = obs.registry(-1)
        assert fabric.counter("faults.drop") == \
            result.fault_counters.dropped
