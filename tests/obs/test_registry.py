"""Unit tests for the metrics registry and the log-bucketed histogram."""

import math

import pytest

from repro.obs import LogHistogram, MetricsRegistry


class TestLogHistogramBuckets:
    def test_floor_bucket_catches_tiny_samples(self):
        histogram = LogHistogram()
        assert histogram.bucket_index(0.0) == 0
        assert histogram.bucket_index(histogram.floor) == 0
        assert histogram.bucket_index(histogram.floor * 1.01) == 1

    def test_bucket_bounds_tile_the_positive_axis(self):
        histogram = LogHistogram()
        previous_high = histogram.bucket_bounds(0)[1]
        for index in range(1, 40):
            low, high = histogram.bucket_bounds(index)
            assert low == previous_high
            assert high == pytest.approx(low * histogram.growth)
            previous_high = high

    def test_samples_land_inside_their_buckets(self):
        histogram = LogHistogram()
        for exponent in range(-9, 1):
            value = 10.0 ** exponent
            low, high = histogram.bucket_bounds(
                histogram.bucket_index(value))
            assert low < value <= high or (low == 0.0 and value <= high)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LogHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LogHistogram(floor=0.0)

    def test_negative_samples_are_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram().add(-1e-9)


class TestLogHistogramEstimates:
    def test_exact_fields(self):
        histogram = LogHistogram()
        for value in (1e-6, 2e-6, 3e-6, 4e-6):
            histogram.add(value)
        assert histogram.count == 4
        assert histogram.minimum == 1e-6
        assert histogram.maximum == 4e-6
        assert histogram.total == pytest.approx(1e-5)
        assert histogram.summary().mean == pytest.approx(2.5e-6)

    def test_empty_summary(self):
        histogram = LogHistogram()
        assert histogram.percentile_estimate(0.5) == 0.0
        assert histogram.summary().count == 0

    def test_fraction_clamp_mirrors_percentile(self):
        histogram = LogHistogram()
        for value in (1e-6, 5e-6, 9e-6):
            histogram.add(value)
        assert histogram.percentile_estimate(-0.5) == histogram.minimum
        assert histogram.percentile_estimate(0.0) == histogram.minimum
        assert histogram.percentile_estimate(1.0) == histogram.maximum
        assert histogram.percentile_estimate(2.0) == histogram.maximum

    def test_estimate_within_growth_factor_of_exact(self):
        histogram = LogHistogram()
        samples = sorted(((i * 37) % 100 + 1) * 1e-6 for i in range(100))
        for value in samples:
            histogram.add(value)
        for fraction in (0.1, 0.5, 0.9, 0.99):
            rank = max(1, math.ceil(fraction * len(samples)))
            exact = samples[rank - 1]
            estimate = histogram.percentile_estimate(fraction)
            assert exact / histogram.growth <= estimate \
                <= exact * histogram.growth

    def test_single_sample_estimates_are_the_sample(self):
        histogram = LogHistogram()
        histogram.add(42e-6)
        for fraction in (0.01, 0.5, 0.99):
            assert histogram.percentile_estimate(fraction) == \
                pytest.approx(42e-6, rel=histogram.growth - 1.0)
            # The clamp to [min, max] makes it exact here:
            assert histogram.minimum <= \
                histogram.percentile_estimate(fraction) <= histogram.maximum


class TestMetricsRegistry:
    def test_counters(self):
        registry = MetricsRegistry(0)
        registry.inc("writes")
        registry.inc("writes", 4)
        assert registry.counter("writes") == 5
        assert registry.counter("absent") == 0

    def test_gauges_keep_sample_order(self):
        registry = MetricsRegistry(0)
        registry.gauge("depth", 1.0, 3.0)
        registry.gauge("depth", 2.0, 1.0)
        assert registry.gauge_samples("depth") == [(1.0, 3.0), (2.0, 1.0)]
        assert registry.gauge_names() == ["depth"]
        assert registry.gauge_samples("absent") == []

    def test_histograms_are_created_on_demand(self):
        registry = MetricsRegistry(0)
        registry.observe("latency", 1e-6)
        registry.observe("latency", 2e-6)
        assert registry.histogram("latency").count == 2
        assert registry.histogram_names() == ["latency"]

    def test_to_dict_shape(self):
        import json

        registry = MetricsRegistry(3)
        registry.inc("ops")
        registry.gauge("depth", 1.0, 2.0)
        registry.observe("latency", 1e-6)
        payload = registry.to_dict()
        json.dumps(payload)
        assert payload["counters"] == {"ops": 1}
        assert payload["gauges"]["depth"] == {"samples": 1, "last": 2.0}
        assert payload["histograms"]["latency"]["count"] == 1
