"""Tests for the self-contained PEP 517 build backend.

The backend exists so `pip install -e .` works offline (no `wheel`
package); these tests build real artifacts into a temp dir and inspect
them.
"""

import sys
import zipfile
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "_build"))
import repro_build_backend as backend  # noqa: E402


class TestEditableWheel:
    def test_contains_pth_pointing_at_src(self, tmp_path):
        name = backend.build_editable(str(tmp_path))
        assert name.endswith(".whl")
        with zipfile.ZipFile(tmp_path / name) as wheel:
            names = wheel.namelist()
            pth = [n for n in names if n.endswith(".pth")]
            assert len(pth) == 1
            target = wheel.read(pth[0]).decode().strip()
            assert target.endswith("src")
            assert (Path(target) / "repro" / "__init__.py").exists()

    def test_dist_info_complete(self, tmp_path):
        name = backend.build_editable(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as wheel:
            names = wheel.namelist()
            for required in ("METADATA", "WHEEL", "RECORD",
                             "top_level.txt"):
                assert any(n.endswith(required) for n in names), required
            metadata = next(wheel.read(n).decode() for n in names
                            if n.endswith("METADATA"))
            assert "Name: repro" in metadata
            assert "Requires-Dist: numpy" in metadata


class TestRegularWheel:
    def test_packages_whole_library(self, tmp_path):
        name = backend.build_wheel(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as wheel:
            names = wheel.namelist()
            assert "repro/__init__.py" in names
            assert "repro/core/baseline/engine.py" in names
            assert not any(n.endswith(".pyc") for n in names)

    def test_record_hashes_every_file(self, tmp_path):
        name = backend.build_wheel(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as wheel:
            record_name = next(n for n in wheel.namelist()
                               if n.endswith("RECORD"))
            record = wheel.read(record_name).decode().strip().splitlines()
            listed = {line.split(",")[0] for line in record}
            assert set(wheel.namelist()) == listed
            for line in record:
                path, digest, size = line.split(",")
                if path == record_name:
                    assert digest == "" and size == ""
                else:
                    assert digest.startswith("sha256=")


class TestHooks:
    def test_requires_hooks_are_empty(self):
        assert backend.get_requires_for_build_wheel() == []
        assert backend.get_requires_for_build_editable() == []
        assert backend.get_requires_for_build_sdist() == []

    def test_prepare_metadata(self, tmp_path):
        dist_info = backend.prepare_metadata_for_build_wheel(str(tmp_path))
        assert (tmp_path / dist_info / "METADATA").exists()

    def test_sdist(self, tmp_path):
        name = backend.build_sdist(str(tmp_path))
        assert (tmp_path / name).exists()
        import tarfile
        with tarfile.open(tmp_path / name) as tar:
            names = tar.getnames()
            assert any("pyproject.toml" in n for n in names)
            assert any("src/repro/__init__.py" in n for n in names)


class TestEntryPoints:
    def test_console_script_declared(self, tmp_path):
        name = backend.build_editable(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as wheel:
            entry = next(wheel.read(n).decode() for n in wheel.namelist()
                         if n.endswith("entry_points.txt"))
        assert "[console_scripts]" in entry
        assert "repro = repro.cli:main" in entry
