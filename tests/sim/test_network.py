"""Unit tests for ports, mailboxes, and the network fabric."""

import pytest

from repro.errors import SimulationError
from repro.sim import Network, Simulator
from repro.sim.network import Mailbox, Packet, Port


@pytest.fixture
def sim():
    return Simulator()


def make_port(sim, latency=100e-9, bandwidth=1e9, gap=0.0):
    return Port(sim, latency, bandwidth, gap)


class TestPort:
    def test_delivery_time_is_serialization_plus_latency(self, sim):
        port = make_port(sim, latency=100e-9, bandwidth=1e9)
        box = Mailbox(sim, "dst")
        arrivals = []

        def receiver():
            packet = yield box.get()
            arrivals.append((sim.now, packet.payload))

        sim.spawn(receiver())
        port.send(Packet(payload="m", size_bytes=1000, src="a", dst="b"), box)
        sim.run()
        # 1000B / 1e9 Bps = 1us serialization + 100ns latency
        assert arrivals[0][0] == pytest.approx(1.1e-6)

    def test_sender_freed_after_serialization_only(self, sim):
        port = make_port(sim, latency=1.0, bandwidth=1e3)
        box = Mailbox(sim, "dst")

        def sender():
            yield port.send(Packet(payload=0, size_bytes=1000,
                                   src="a", dst="b"), box)
            return sim.now

        # serialization = 1s; latency (1s) is NOT the sender's problem
        assert sim.run_process(sender()) == pytest.approx(1.0)

    def test_back_to_back_sends_serialize(self, sim):
        port = make_port(sim, latency=0.0, bandwidth=1e3, gap=0.5)
        box = Mailbox(sim, "dst")
        arrivals = []

        def receiver():
            while True:
                packet = yield box.get()
                arrivals.append(sim.now)

        sim.spawn(receiver())
        for _ in range(3):
            port.send(Packet(payload=0, size_bytes=1000, src="a", dst="b"),
                      box)
        sim.run()
        # each takes 1s on the wire with a 0.5s gap between starts
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.5),
                            pytest.approx(4.0)]

    def test_broadcast_single_serialization(self, sim):
        port = make_port(sim, latency=0.2, bandwidth=1e3)
        boxes = [Mailbox(sim, f"d{i}") for i in range(3)]
        arrivals = []

        def receiver(box):
            packet = yield box.get()
            arrivals.append(sim.now)

        for box in boxes:
            sim.spawn(receiver(box))
        pairs = [(Packet(payload=0, size_bytes=1000, src="a", dst=b.name), b)
                 for b in boxes]
        port.send_broadcast(pairs, size_bytes=1000)
        sim.run()
        # all three delivered at the same instant: 1s ser + 0.2s latency
        assert arrivals == [pytest.approx(1.2)] * 3

    def test_broadcast_requires_destinations(self, sim):
        port = make_port(sim)
        with pytest.raises(SimulationError):
            port.send_broadcast([], size_bytes=10)

    def test_transfer_claims_port(self, sim):
        port = make_port(sim, latency=0.5, bandwidth=1e3)
        done = []

        def proc():
            yield port.transfer(1000)
            done.append(sim.now)

        sim.run_process(proc())
        assert done == [pytest.approx(1.5)]

    def test_invalid_parameters(self, sim):
        with pytest.raises(SimulationError):
            Port(sim, latency_s=0.0, bandwidth_bps=0.0)
        with pytest.raises(SimulationError):
            Port(sim, latency_s=-1.0, bandwidth_bps=1.0)

    def test_byte_accounting(self, sim):
        port = make_port(sim)
        box = Mailbox(sim, "d")
        port.send(Packet(payload=0, size_bytes=64, src="a", dst="d"), box)
        port.send(Packet(payload=0, size_bytes=64, src="a", dst="d"), box)
        assert port.packets_sent == 2
        assert port.bytes_sent == 128


class TestNetwork:
    def test_end_to_end_send(self, sim):
        net = Network(sim)
        net.add_endpoint("a", 100e-9, 1e9)
        net.add_endpoint("b", 100e-9, 1e9)
        results = []

        def receiver():
            packet = yield net.mailbox("b").get()
            results.append(packet.payload)

        sim.spawn(receiver())
        net.send("a", "b", {"hello": 1}, size_bytes=64)
        sim.run()
        assert results == [{"hello": 1}]

    def test_duplicate_endpoint_rejected(self, sim):
        net = Network(sim)
        net.add_endpoint("a", 0, 1e9)
        with pytest.raises(SimulationError):
            net.add_endpoint("a", 0, 1e9)

    def test_endpoints_listing(self, sim):
        net = Network(sim)
        net.add_endpoint("x", 0, 1e9)
        net.add_endpoint("y", 0, 1e9)
        assert net.endpoints() == ["x", "y"]

    def test_broadcast_reaches_all(self, sim):
        net = Network(sim)
        for name in "abcd":
            net.add_endpoint(name, 0, 1e9)
        seen = []

        def receiver(name):
            packet = yield net.mailbox(name).get()
            seen.append((name, packet.payload))

        for name in "bcd":
            sim.spawn(receiver(name))
        net.broadcast("a", ["b", "c", "d"], "announce", size_bytes=64)
        sim.run()
        assert sorted(seen) == [("b", "announce"), ("c", "announce"),
                                ("d", "announce")]
