"""Unit tests for the event layer."""

import pytest

from repro.errors import EventAlreadyTriggered, SimulationError
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_untriggered_has_no_value(self, sim):
        event = sim.event()
        assert not event.triggered
        with pytest.raises(SimulationError):
            _ = event.value

    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered and event.ok
        assert event.value == 42

    def test_succeed_none_is_triggered(self, sim):
        event = sim.event()
        event.succeed()
        assert event.triggered
        assert event.value is None

    def test_double_succeed_raises(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(EventAlreadyTriggered):
            event.succeed(2)

    def test_fail_then_succeed_raises(self, sim):
        event = sim.event()
        event.fail(ValueError("boom"))
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_failed_event_value_raises_original(self, sim):
        event = sim.event()
        event.fail(ValueError("boom"))
        assert event.triggered and not event.ok
        with pytest.raises(ValueError, match="boom"):
            _ = event.value

    def test_callback_after_processing_runs_immediately(self, sim):
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestTimeout:
    def test_fires_after_delay(self, sim):
        results = []

        def proc():
            value = yield sim.timeout(2.5, value="done")
            results.append((sim.now, value))

        sim.spawn(proc())
        sim.run()
        assert results == [(2.5, "done")]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_allowed(self, sim):
        def proc():
            yield sim.timeout(0.0)
            return sim.now

        assert sim.run_process(proc()) == 0.0


class TestAllOf:
    def test_waits_for_all(self, sim):
        def proc():
            values = yield sim.all_of([sim.timeout(1, value="a"),
                                       sim.timeout(3, value="b"),
                                       sim.timeout(2, value="c")])
            return (sim.now, values)

        now, values = sim.run_process(proc())
        assert now == 3
        assert values == ["a", "b", "c"]  # construction order, not firing

    def test_empty_all_of_fires_immediately(self, sim):
        def proc():
            values = yield sim.all_of([])
            return values

        assert sim.run_process(proc()) == []

    def test_child_failure_propagates(self, sim):
        bad = sim.event()

        def failer():
            yield sim.timeout(1)
            bad.fail(RuntimeError("child failed"))

        def proc():
            yield sim.all_of([sim.timeout(5), bad])

        sim.spawn(failer())
        process = sim.spawn(proc())
        sim.strict = False
        sim.run()
        assert process.triggered and not process.ok


class TestAnyOf:
    def test_first_wins(self, sim):
        def proc():
            event, value = yield sim.any_of([sim.timeout(5, value="slow"),
                                             sim.timeout(1, value="fast")])
            return (sim.now, value)

        now, value = sim.run_process(proc())
        assert now == 1
        assert value == "fast"

    def test_cross_simulator_composite_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.all_of([other.timeout(1)])
