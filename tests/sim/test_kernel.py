"""Unit tests for the simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_monotonic_across_processes(self, sim):
        stamps = []

        def proc(delay):
            yield sim.timeout(delay)
            stamps.append(sim.now)

        for delay in (3, 1, 2):
            sim.spawn(proc(delay))
        sim.run()
        assert stamps == [1, 2, 3]

    def test_ties_broken_by_insertion_order(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            sim.spawn(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_advances_clock_exactly(self, sim):
        def proc():
            yield sim.timeout(10)

        sim.spawn(proc())
        sim.run(until=4)
        assert sim.now == 4
        sim.run(until=20)
        assert sim.now == 20

    def test_run_until_past_raises(self, sim):
        sim.run(until=5)
        with pytest.raises(SimulationError):
            sim.run(until=1)


class TestRunProcess:
    def test_returns_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "result"

        assert sim.run_process(proc()) == "result"

    def test_deadlock_detected(self, sim):
        def proc():
            yield sim.event()  # nobody ever fires this

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_process(proc())

    def test_stops_at_completion_with_background_noise(self, sim):
        # An infinite heartbeat must not keep run_process spinning.
        def heartbeat():
            while True:
                yield sim.timeout(1)

        def proc():
            yield sim.timeout(5)
            return sim.now

        sim.spawn(heartbeat())
        assert sim.run_process(proc()) == 5
        assert sim.now == 5

    def test_determinism_two_identical_sims(self):
        def experiment():
            sim = Simulator()
            log = []

            def worker(tag, delay):
                yield sim.timeout(delay)
                log.append((tag, sim.now))
                yield sim.timeout(delay * 2)
                log.append((tag, sim.now))

            for i in range(5):
                sim.spawn(worker(i, 0.1 * (i + 1)))
            sim.run()
            return log

        assert experiment() == experiment()


class TestStop:
    def test_stop_halts_simulation(self):
        from repro.errors import StopSimulation
        sim = Simulator()
        log = []

        def stopper():
            yield sim.timeout(5)
            log.append("stopping")
            sim.stop()

        def background():
            for _ in range(100):
                yield sim.timeout(1)
                log.append(sim.now)

        sim.spawn(background())
        sim.spawn(stopper())
        sim.run()
        assert log[-1] == "stopping"
        assert sim.now == 5
