"""The hot-path optimizations are calendar-transparent.

Every fast path in the kernel and fabric — pooled timeouts, the
skip-when-no-tracer guards in the engines, the skip-when-no-injector
branch in ``Port._deliver`` — claims to change only constant factors,
never behavior.  These tests pin that claim: they install a
:attr:`Simulator.schedule_observer` hook (called at the single
heap-push choke point, :meth:`Simulator._schedule_event`) to record
the full event calendar of a small-but-real workload and assert the
recording is *identical* with the optimization on and off.

A divergence here means an optimization changed simulation semantics,
which invalidates every figure the repo produces — treat failures as
release blockers, not flaky tests.
"""

from repro.api import (LIN_SYNCH, MINOS_B, MINOS_O, MinosCluster,
                       YcsbWorkload)
from repro.hw.params import DEFAULT_MACHINE
from repro.sim.events import Timeout, _PooledTimeout
from repro.sim.kernel import Simulator


def record_calendar(sim):
    """Install a ``schedule_observer`` so every push is recorded.

    Returns the list the pushes land in; each entry is ``(now, delay)``
    — enough to detect any reordering, retiming, or added/removed
    event, while staying agnostic to which object instance carried it
    (pooling deliberately reuses instances).
    """
    calendar = []

    def observe(event, delay):
        calendar.append((sim._now, delay))

    sim.schedule_observer = observe
    return calendar


def run_small_workload(config, setup=None):
    """One deterministic 3-node YCSB run; returns its observables."""
    cluster = MinosCluster(model=LIN_SYNCH, config=config,
                           params=DEFAULT_MACHINE.with_nodes(3))
    if setup is not None:
        setup(cluster)
    calendar = record_calendar(cluster.sim)
    workload = YcsbWorkload(records=12, requests_per_client=8,
                            write_fraction=0.6, seed=7)
    metrics = cluster.run_workload(workload, clients_per_node=1)
    return {
        "calendar": calendar,
        "events_processed": cluster.sim.events_processed,
        "write_latencies": metrics.write_latency.samples,
        "read_latencies": metrics.read_latency.samples,
    }


def assert_identical(reference, candidate):
    assert candidate["events_processed"] == reference["events_processed"]
    assert candidate["calendar"] == reference["calendar"]
    assert candidate["write_latencies"] == reference["write_latencies"]
    assert candidate["read_latencies"] == reference["read_latencies"]
    assert len(reference["calendar"]) > 1000, \
        "workload too small — the comparison is vacuous"


class TestTimeoutPooling:
    def test_pooling_is_calendar_transparent(self):
        """Same calendar with sleep() pooling enabled and disabled."""
        def disable_pooling(cluster):
            cluster.sim.timeout_pooling = False

        for config in (MINOS_B, MINOS_O):
            pooled = run_small_workload(config)
            unpooled = run_small_workload(config, setup=disable_pooling)
            assert_identical(pooled, unpooled)

    def test_sleep_recycles_instances(self):
        """The pool actually reuses objects (else it's dead code)."""
        sim = Simulator()

        seen = []

        def chain():
            for _ in range(8):
                timeout = sim.sleep(1e-9)
                seen.append(timeout)
                yield timeout

        sim.spawn(chain(), name="chain")
        sim.run()
        assert all(isinstance(t, _PooledTimeout) for t in seen)
        # A fired hop is recycled right after its resume callback runs,
        # so the chain alternates between two pooled instances: hop N+2
        # reuses hop N's object.
        assert seen[0] is not seen[1]
        assert seen[2] is seen[0] and seen[3] is seen[1]
        assert sim._timeout_pool, "fired timeouts were not recycled"

    def test_sleep_with_pooling_disabled_allocates_plain_timeouts(self):
        sim = Simulator()
        sim.timeout_pooling = False
        timeout = sim.sleep(1e-9)
        assert type(timeout) is Timeout

    def test_recycled_timeouts_drop_their_payload(self):
        """Recycling must not leak values into the next wait."""
        sim = Simulator()
        payload = object()

        def one_hop():
            got = yield sim.sleep(1e-9, value=payload)
            assert got is payload

        sim.run_process(one_hop(), name="hop")
        assert all(t._value is None for t in sim._timeout_pool)


class TestTracerFastPath:
    def test_attaching_a_tracer_does_not_change_the_calendar(self):
        """The no-tracer guards skip bookkeeping only: with a tracer
        attached the run must schedule the exact same events (tracing
        observes the simulation, never perturbs it)."""
        def attach(cluster):
            cluster.attach_tracer()

        for config in (MINOS_B, MINOS_O):
            plain = run_small_workload(config)
            traced = run_small_workload(config, setup=attach)
            assert_identical(plain, traced)


class TestObsFastPath:
    def test_attaching_obs_does_not_change_the_calendar(self):
        """The span recorder claims the same zero-overhead contract as
        the tracer: record-only bookkeeping behind ``obs is not None``
        guards.  With a recorder attached the run must schedule the
        exact same events, or the exported timeline describes a
        *different* execution than the unobserved one."""
        def attach(cluster):
            cluster.attach_obs()

        for config in (MINOS_B, MINOS_O):
            plain = run_small_workload(config)
            observed = run_small_workload(config, setup=attach)
            assert_identical(plain, observed)

    def test_obs_and_tracer_together_are_calendar_transparent(self):
        def attach_both(cluster):
            cluster.attach_tracer()
            cluster.attach_obs()

        plain = run_small_workload(MINOS_O)
        observed = run_small_workload(MINOS_O, setup=attach_both)
        assert_identical(plain, observed)

    def test_obs_is_calendar_transparent_under_faults(self):
        """The retransmit/fault instrumentation must also be record-only:
        the same lossy run, with and without the recorder, schedules the
        same retransmissions at the same times."""
        from repro.faults import FaultPlan

        def install_plan(cluster):
            cluster.enable_faults(FaultPlan.lossy(seed=3, drop=0.05))

        def install_plan_and_obs(cluster):
            cluster.attach_obs()
            cluster.enable_faults(FaultPlan.lossy(seed=3, drop=0.05))

        for config in (MINOS_B, MINOS_O):
            plain = run_small_workload(config, setup=install_plan)
            observed = run_small_workload(config,
                                          setup=install_plan_and_obs)
            assert_identical(plain, observed)

    def test_obs_actually_recorded_something(self):
        """Guard against the transparency tests passing vacuously
        because the recorder was never invoked."""
        recorders = {}

        def attach(cluster):
            recorders["obs"] = cluster.attach_obs()

        run_small_workload(MINOS_O, setup=attach)
        obs = recorders["obs"]
        assert len(obs.spans) > 10
        assert len(obs.segments) > 50
        assert obs.open_segments() == []


class TestHistoryRecorderFastPath:
    """The correctness harness (repro.check) makes the same
    record-only claim as the tracer and the span recorder: a run driven
    by ``RecordingClient`` + ``HistoryRecorder`` must schedule the
    byte-identical event calendar of one driven by plain
    ``ClosedLoopClient`` s — the recorded history describes exactly the
    execution that would have happened unrecorded."""

    def run_clients(self, config, recording):
        from repro import ClosedLoopClient
        from repro.check import HistoryRecorder, RecordingClient

        cluster = MinosCluster(model=LIN_SYNCH, config=config,
                               params=DEFAULT_MACHINE.with_nodes(3))
        workload = YcsbWorkload(records=12, requests_per_client=8,
                                write_fraction=0.6, seed=7)
        cluster.load_records(workload.initial_records())
        calendar = record_calendar(cluster.sim)
        recorder = HistoryRecorder(cluster.sim) if recording else None
        clients = []
        for node_id in range(3):
            engine = cluster.nodes[node_id].engine
            ops = workload.ops_for(node_id, 0)
            if recording:
                clients.append(RecordingClient(cluster, engine, ops,
                                               recorder, 0))
            else:
                clients.append(ClosedLoopClient(cluster, engine, ops, 0))
        for i, client in enumerate(clients):
            cluster.sim.spawn(client.run(), name=f"client.{i}")
        cluster.sim.run()
        return {
            "calendar": calendar,
            "events_processed": cluster.sim.events_processed,
            "history": recorder.history() if recorder else None,
        }

    def test_history_recording_is_calendar_transparent(self):
        for config in (MINOS_B, MINOS_O):
            plain = self.run_clients(config, recording=False)
            recorded = self.run_clients(config, recording=True)
            assert (recorded["events_processed"]
                    == plain["events_processed"])
            assert recorded["calendar"] == plain["calendar"]
            assert len(plain["calendar"]) > 1000, \
                "workload too small — the comparison is vacuous"

    def test_recording_run_captured_the_full_history(self):
        """Guard against vacuous transparency: the recorded run must
        have produced one completed history op per issued op."""
        recorded = self.run_clients(MINOS_O, recording=True)
        history = recorded["history"]
        assert len(history) == 3 * 8
        assert not history.pending


class _PassThroughInjector:
    """Injector-shaped object that faults nothing: every packet is
    delivered exactly once at its fault-free arrival time."""

    def deliveries(self, packet, when):
        yield packet, when


class TestInjectorFastPath:
    def test_pass_through_injector_matches_no_injector(self):
        """``Port._deliver`` skips the injector hook when none is set;
        a pass-through injector must therefore be indistinguishable
        from no injector at all."""
        def install(cluster):
            cluster.network.install_fault_injector(_PassThroughInjector())

        plain = run_small_workload(MINOS_B)
        hooked = run_small_workload(MINOS_B, setup=install)
        assert_identical(plain, hooked)
