"""Unit and property tests for synchronization primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import BoundedBuffer, Gate, Lock, Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestGate:
    def test_fire_wakes_all_waiters(self, sim):
        gate = Gate(sim)
        woken = []

        def waiter(tag):
            yield gate.wait()
            woken.append((tag, sim.now))

        for tag in range(3):
            sim.spawn(waiter(tag))

        def firer():
            yield sim.timeout(5)
            assert gate.fire("v") == 3

        sim.spawn(firer())
        sim.run()
        assert woken == [(0, 5), (1, 5), (2, 5)]

    def test_fire_with_no_waiters(self, sim):
        gate = Gate(sim)
        assert gate.fire() == 0

    def test_wait_for_rechecks_predicate(self, sim):
        gate = Gate(sim)
        counter = {"n": 0}

        def waiter():
            yield from gate.wait_for(lambda: counter["n"] >= 3)
            return sim.now

        def bumper():
            for _ in range(3):
                yield sim.timeout(1)
                counter["n"] += 1
                gate.fire()

        sim.spawn(bumper())
        assert sim.run_process(waiter()) == 3

    def test_wait_for_true_predicate_returns_immediately(self, sim):
        gate = Gate(sim)

        def waiter():
            yield from gate.wait_for(lambda: True)
            return sim.now

        assert sim.run_process(waiter()) == 0.0


class TestStore:
    def test_fifo_order(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        for item in "abc":
            store.put(item)
        sim.spawn(consumer())
        sim.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def consumer():
            item = yield store.get()
            return (sim.now, item)

        def producer():
            yield sim.timeout(7)
            store.put("late")

        sim.spawn(producer())
        assert sim.run_process(consumer()) == (7, "late")

    def test_getters_served_fifo(self, sim):
        store = Store(sim)
        served = []

        def consumer(tag):
            item = yield store.get()
            served.append((tag, item))

        for tag in range(2):
            sim.spawn(consumer(tag))

        def producer():
            yield sim.timeout(1)
            store.put("x")
            store.put("y")

        sim.spawn(producer())
        sim.run()
        assert served == [(0, "x"), (1, "y")]

    def test_len(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestBoundedBuffer:
    def test_put_blocks_when_full(self, sim):
        buf = BoundedBuffer(sim, capacity=1)
        log = []

        def producer():
            yield buf.put("a")
            log.append(("put-a", sim.now))
            yield buf.put("b")
            log.append(("put-b", sim.now))

        def consumer():
            yield sim.timeout(10)
            item = yield buf.get()
            log.append(("got", item, sim.now))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert log == [("put-a", 0), ("got", "a", 10), ("put-b", 10)]

    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            BoundedBuffer(sim, capacity=0)

    def test_unbounded_never_blocks(self, sim):
        buf = BoundedBuffer(sim, capacity=None)

        def producer():
            for i in range(100):
                yield buf.put(i)
            return sim.now

        assert sim.run_process(producer()) == 0.0
        assert len(buf) == 100

    def test_handoff_to_waiting_getter(self, sim):
        buf = BoundedBuffer(sim, capacity=1)
        result = []

        def consumer():
            item = yield buf.get()
            result.append(item)

        sim.spawn(consumer())

        def producer():
            yield sim.timeout(1)
            yield buf.put("direct")

        sim.spawn(producer())
        sim.run()
        assert result == ["direct"]
        assert len(buf) == 0

    @settings(max_examples=30, deadline=None)
    @given(items=st.lists(st.integers(), max_size=30),
           capacity=st.integers(min_value=1, max_value=4))
    def test_fifo_preserved_for_any_capacity(self, items, capacity):
        sim = Simulator()
        buf = BoundedBuffer(sim, capacity=capacity)
        received = []

        def producer():
            for item in items:
                yield buf.put(item)

        def consumer():
            for _ in items:
                value = yield buf.get()
                received.append(value)
                yield sim.timeout(1)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert received == items


class TestResource:
    def test_capacity_enforced(self, sim):
        res = Resource(sim, 2)
        active = {"now": 0, "peak": 0}

        def worker():
            yield res.request()
            active["now"] += 1
            active["peak"] = max(active["peak"], active["now"])
            yield sim.timeout(1)
            active["now"] -= 1
            res.release()

        for _ in range(6):
            sim.spawn(worker())
        sim.run()
        assert active["peak"] == 2
        assert sim.now == 3  # 6 jobs, 2 at a time, 1s each

    def test_release_idle_raises(self, sim):
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_available_accounting(self, sim):
        res = Resource(sim, 3)

        def proc():
            yield res.request()
            assert res.available == 2
            res.release()
            assert res.available == 3

        sim.run_process(proc())


class TestLock:
    def test_mutual_exclusion(self, sim):
        lock = Lock(sim)
        order = []

        def worker(tag):
            yield lock.acquire()
            order.append(("enter", tag, sim.now))
            yield sim.timeout(2)
            order.append(("exit", tag, sim.now))
            lock.release()

        sim.spawn(worker("a"))
        sim.spawn(worker("b"))
        sim.run()
        assert order == [("enter", "a", 0), ("exit", "a", 2),
                         ("enter", "b", 2), ("exit", "b", 4)]

    def test_held_property(self, sim):
        lock = Lock(sim)

        def proc():
            assert not lock.held
            yield lock.acquire()
            assert lock.held
            lock.release()
            assert not lock.held

        sim.run_process(proc())


class TestGateIntrospection:
    def test_waiter_count(self):
        sim = Simulator()
        gate = Gate(sim, label="g")

        def waiter():
            yield gate.wait()

        sim.spawn(waiter())
        sim.spawn(waiter())
        sim.run(until=0)
        assert gate.waiter_count == 2
        gate.fire()
        assert gate.waiter_count == 0
