"""Unit tests for generator processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestProcess:
    def test_requires_generator(self, sim):
        def not_a_generator():
            return 42

        with pytest.raises(SimulationError, match="generator"):
            sim.spawn(not_a_generator())

    def test_join_returns_value(self, sim):
        def child():
            yield sim.timeout(2)
            return "child-result"

        def parent():
            value = yield sim.spawn(child())
            return (sim.now, value)

        assert sim.run_process(parent()) == (2, "child-result")

    def test_is_alive(self, sim):
        def child():
            yield sim.timeout(5)

        process = sim.spawn(child())
        assert process.is_alive
        sim.run()
        assert not process.is_alive

    def test_strict_mode_raises_process_exception(self, sim):
        def bad():
            yield sim.timeout(1)
            raise RuntimeError("bug in process")

        sim.spawn(bad())
        with pytest.raises(RuntimeError, match="bug in process"):
            sim.run()

    def test_non_strict_mode_stores_exception(self):
        sim = Simulator(strict=False)

        def bad():
            yield sim.timeout(1)
            raise RuntimeError("stored")

        process = sim.spawn(bad())
        sim.run()
        assert process.triggered and not process.ok

    def test_exception_thrown_into_joiner(self):
        sim = Simulator(strict=False)

        def bad():
            yield sim.timeout(1)
            raise ValueError("inner")

        def parent():
            try:
                yield sim.spawn(bad())
            except ValueError as exc:
                return f"caught {exc}"

        assert sim.run_process(parent()) == "caught inner"

    def test_yield_non_event_rejected(self, sim):
        def bad():
            yield 42

        sim.spawn(bad())
        with pytest.raises(SimulationError, match="yield"):
            sim.run()

    def test_immediate_return(self, sim):
        def instant():
            return "now"
            yield  # pragma: no cover

        assert sim.run_process(instant()) == "now"
