"""Tests for the key-popularity generators."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads.zipfian import (ScrambledZipfian, UniformGenerator,
                                     ZipfianGenerator, make_generator, zeta)


class TestZeta:
    def test_known_values(self):
        assert zeta(1, 0.5) == pytest.approx(1.0)
        assert zeta(3, 1e-9) == pytest.approx(3.0, rel=1e-6)

    def test_cached(self):
        assert zeta(1000, 0.99) is not None
        assert zeta(1000, 0.99) == zeta(1000, 0.99)


class TestZipfian:
    def test_rank_zero_is_most_popular(self):
        gen = ZipfianGenerator(1000, rng=random.Random(1))
        counts = Counter(gen.next() for _ in range(20_000))
        assert counts[0] == max(counts.values())
        # Head heaviness: rank 0 drawn far more often than uniform would.
        assert counts[0] > 20_000 / 1000 * 20

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=5000),
           seed=st.integers(min_value=0, max_value=99))
    def test_draws_within_bounds(self, n, seed):
        gen = ZipfianGenerator(n, rng=random.Random(seed))
        for _ in range(50):
            assert 0 <= gen.next() < n

    def test_deterministic_given_seed(self):
        a = ZipfianGenerator(100, rng=random.Random(7))
        b = ZipfianGenerator(100, rng=random.Random(7))
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]

    def test_validation(self):
        with pytest.raises(ConfigError):
            ZipfianGenerator(0)
        with pytest.raises(ConfigError):
            ZipfianGenerator(10, theta=1.0)


class TestScrambled:
    def test_within_bounds_and_skewed(self):
        gen = ScrambledZipfian(500, rng=random.Random(3))
        counts = Counter(gen.next() for _ in range(10_000))
        assert all(0 <= k < 500 for k in counts)
        # Still skewed: the hottest key dominates.
        assert max(counts.values()) > 10_000 / 500 * 10

    def test_hot_key_not_rank_zero(self):
        """Scrambling spreads hot keys over the key space."""
        gen = ScrambledZipfian(500, rng=random.Random(3))
        counts = Counter(gen.next() for _ in range(5_000))
        hottest = max(counts, key=counts.get)
        assert hottest != 0


class TestUniform:
    def test_covers_space(self):
        gen = UniformGenerator(20, rng=random.Random(5))
        seen = {gen.next() for _ in range(2000)}
        assert seen == set(range(20))

    def test_validation(self):
        with pytest.raises(ConfigError):
            UniformGenerator(0)


class TestFactory:
    def test_factory_choices(self):
        assert isinstance(make_generator("zipfian", 10), ScrambledZipfian)
        assert isinstance(make_generator("uniform", 10), UniformGenerator)
        with pytest.raises(ConfigError):
            make_generator("pareto", 10)


class TestDistributionShape:
    def test_zipfian_frequencies_match_theory(self):
        """Observed rank frequencies track 1/rank^theta (loose fit)."""
        import math
        n, theta, draws = 50, 0.99, 60_000
        gen = ZipfianGenerator(n, theta=theta, rng=random.Random(11))
        counts = Counter(gen.next() for _ in range(draws))
        z = zeta(n, theta)
        for rank in (0, 1, 4, 9):
            expected = draws * (1.0 / (rank + 1) ** theta) / z
            observed = counts.get(rank, 0)
            assert observed == pytest.approx(expected, rel=0.25), rank

    def test_uniform_frequencies_flat(self):
        n, draws = 20, 40_000
        gen = UniformGenerator(n, rng=random.Random(3))
        counts = Counter(gen.next() for _ in range(draws))
        for key in range(n):
            assert counts[key] == pytest.approx(draws / n, rel=0.15)
