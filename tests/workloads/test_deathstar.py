"""Tests for the DeathStar-style microservice functions."""

import random

from repro.workloads.deathstar import (CLIENT_RTT, DEATHSTAR_FUNCTIONS,
                                       MEDIA_LOGIN, SOCIAL_LOGIN)
from repro.workloads.ycsb import OpKind


class TestFunctions:
    def test_rtt_is_papers_500us(self):
        assert CLIENT_RTT == 500e-6

    def test_both_functions_registered(self):
        assert SOCIAL_LOGIN in DEATHSTAR_FUNCTIONS
        assert MEDIA_LOGIN in DEATHSTAR_FUNCTIONS

    def test_invocation_matches_template(self):
        rng = random.Random(0)
        ops = SOCIAL_LOGIN.invocation(rng)
        assert len(ops) == len(SOCIAL_LOGIN.ops)
        kinds = [op.kind for op in ops]
        expected = [OpKind.READ if entry[0] == "get" else OpKind.WRITE
                    for entry in SOCIAL_LOGIN.ops]
        assert kinds == expected

    def test_media_login_heavier_than_social(self):
        assert len(MEDIA_LOGIN.ops) > len(SOCIAL_LOGIN.ops)

    def test_global_keys_shared_across_users(self):
        seen = set()
        for seed in range(10):
            for op in SOCIAL_LOGIN.invocation(random.Random(seed)):
                if "stats:" in op.key:
                    seen.add(op.key)
        # Global stats keys carry no user suffix: few distinct keys.
        assert seen == {"social:stats:daily_logins",
                        "social:stats:active_users"}

    def test_per_user_keys_vary(self):
        keys = set()
        for seed in range(20):
            ops = MEDIA_LOGIN.invocation(random.Random(seed))
            keys.add(ops[0].key)  # the ("get", "user") entry
        assert len(keys) > 1

    def test_initial_records_cover_all_invocation_keys(self):
        initial = {key for key, _v in SOCIAL_LOGIN.initial_records()}
        for seed in range(30):
            for op in SOCIAL_LOGIN.invocation(random.Random(seed)):
                assert op.key in initial
