"""Tests for the YCSB-style workload generator."""

import pytest

from repro.errors import ConfigError
from repro.workloads.ycsb import Op, OpKind, YcsbWorkload, record_key


class TestStreams:
    def test_request_count(self):
        wl = YcsbWorkload(records=50, requests_per_client=40)
        ops = list(wl.ops_for(0, 0))
        assert len(ops) == 40

    def test_write_fraction_respected(self):
        wl = YcsbWorkload(records=100, requests_per_client=2000,
                          write_fraction=0.3, seed=11)
        ops = list(wl.ops_for(1, 0))
        writes = sum(1 for op in ops if op.kind is OpKind.WRITE)
        assert 0.25 < writes / len(ops) < 0.35

    def test_pure_read_and_pure_write(self):
        reads = list(YcsbWorkload(requests_per_client=50,
                                  write_fraction=0.0).ops_for(0, 0))
        writes = list(YcsbWorkload(requests_per_client=50,
                                   write_fraction=1.0).ops_for(0, 0))
        assert all(op.kind is OpKind.READ for op in reads)
        assert all(op.kind is OpKind.WRITE for op in writes)

    def test_deterministic_per_client(self):
        wl = YcsbWorkload(records=100, requests_per_client=30, seed=9)
        assert list(wl.ops_for(2, 1)) == list(wl.ops_for(2, 1))

    def test_clients_get_distinct_streams(self):
        wl = YcsbWorkload(records=100, requests_per_client=30, seed=9)
        assert list(wl.ops_for(0, 0)) != list(wl.ops_for(1, 0))

    def test_keys_within_database(self):
        wl = YcsbWorkload(records=10, requests_per_client=200)
        valid = {record_key(i) for i in range(10)}
        for op in wl.ops_for(0, 0):
            assert op.key in valid


class TestInitialRecords:
    def test_count_and_keys(self):
        wl = YcsbWorkload(records=7)
        records = list(wl.initial_records())
        assert len(records) == 7
        assert records[0][0] == "user0"


class TestScopes:
    def test_persist_every_inserts_persist_ops(self):
        wl = YcsbWorkload(records=10, requests_per_client=30,
                          write_fraction=1.0, persist_every=5)
        ops = list(wl.ops_for(0, 0))
        persists = [op for op in ops if op.kind is OpKind.PERSIST]
        writes = [op for op in ops if op.kind is OpKind.WRITE]
        assert len(writes) == 30
        assert len(persists) == 6  # every 5 writes

    def test_scope_ids_advance_after_persist(self):
        wl = YcsbWorkload(records=10, requests_per_client=10,
                          write_fraction=1.0, persist_every=2)
        ops = list(wl.ops_for(0, 0))
        scopes = {op.scope for op in ops if op.kind is OpKind.PERSIST}
        assert len(scopes) == 5

    def test_trailing_persist_flushes_open_scope(self):
        wl = YcsbWorkload(records=10, requests_per_client=3,
                          write_fraction=1.0, persist_every=10)
        ops = list(wl.ops_for(0, 0))
        assert ops[-1].kind is OpKind.PERSIST


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigError):
            YcsbWorkload(records=0)
        with pytest.raises(ConfigError):
            YcsbWorkload(write_fraction=1.5)
        with pytest.raises(ConfigError):
            YcsbWorkload(persist_every=0)


class TestPresets:
    def test_standard_core_workloads(self):
        from repro.workloads.ycsb import YcsbWorkload
        assert YcsbWorkload.workload_a().write_fraction == 0.5
        assert YcsbWorkload.workload_b().write_fraction == 0.05
        assert YcsbWorkload.workload_c().write_fraction == 0.0

    def test_presets_accept_overrides(self):
        from repro.workloads.ycsb import YcsbWorkload
        wl = YcsbWorkload.workload_b(records=7, seed=1)
        assert wl.records == 7 and wl.write_fraction == 0.05
