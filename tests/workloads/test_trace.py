"""Tests for explicit trace workloads."""

import pytest

from repro import LIN_SCOPE, LIN_SYNCH, MINOS_B, MinosCluster
from repro.errors import ConfigError
from repro.hw.params import MachineParams
from repro.workloads.trace import TraceWorkload, parse_trace
from repro.workloads.ycsb import OpKind


class TestBuilder:
    def test_fluent_construction(self):
        wl = (TraceWorkload()
              .add_record("k", "v0")
              .write(0, "k", "v1")
              .read(1, "k")
              .persist(0, scope=7))
        assert len(wl) == 3
        assert wl.records == [("k", "v0")]
        assert wl.max_clients == 1

    def test_ops_for_routing(self):
        wl = TraceWorkload().write(0, "k", "a").write(1, "k", "b", client=2)
        assert [op.value for op in wl.ops_for(0, 0)] == ["a"]
        assert [op.value for op in wl.ops_for(1, 2)] == ["b"]
        assert list(wl.ops_for(3, 0)) == []
        assert wl.max_clients == 3


class TestParser:
    def test_full_grammar(self):
        wl = parse_trace("""
            # a comment
            init user1 hello
            0 w user1 v1
            1 r user1
            2.1 w@7 user1 v2
            0 p 7
        """)
        assert wl.records == [("user1", "hello")]
        ops0 = list(wl.ops_for(0, 0))
        assert ops0[0].kind is OpKind.WRITE
        assert ops0[1].kind is OpKind.PERSIST and ops0[1].scope == 7
        scoped = list(wl.ops_for(2, 1))[0]
        assert scoped.scope == 7

    def test_parse_errors_carry_line_numbers(self):
        with pytest.raises(ConfigError, match="line 2"):
            parse_trace("0 w k v\nbogus line here")
        with pytest.raises(ConfigError):
            parse_trace("0 x k")

    def test_empty_trace(self):
        wl = parse_trace("# nothing\n\n")
        assert len(wl) == 0


class TestReplay:
    def test_replay_through_cluster(self):
        wl = parse_trace("""
            init k v0
            0 w k v1
            1 r k
        """)
        cluster = MinosCluster(model=LIN_SYNCH, config=MINOS_B,
                               params=MachineParams(nodes=2))
        metrics = cluster.run_workload(wl, clients_per_node=wl.max_clients)
        assert metrics.counters.writes_completed == 1
        assert metrics.counters.reads_completed == 1
        assert cluster.nodes[1].kv.volatile_read("k").value == "v1"

    def test_replay_scope_trace(self):
        wl = parse_trace("""
            init a v0
            init b v0
            0 w@5 a x
            0 w@5 b y
            0 p 5
        """)
        cluster = MinosCluster(model=LIN_SCOPE, config=MINOS_B,
                               params=MachineParams(nodes=2))
        cluster.run_workload(wl, clients_per_node=1)
        for node in cluster.nodes:
            assert node.kv.durable_value("a") == "x"
            assert node.kv.durable_value("b") == "y"
